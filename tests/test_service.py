"""The experiment service daemon: warm/cold/coalesced/backpressure.

Most tests run the service in-process via ``spawn_service`` with an
injected ``execute_fn`` (a real ``ProcessPoolExecutor`` underneath, so
the fakes must be module-level and picklable).  One end-to-end test
drives the real subprocess daemon (``runner serve``) — that is the
test the CI service-smoke job targets (``-k smoke``).
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import ExperimentRequest, ExperimentResponse
from repro.common.config import SimScale
from repro.service import ServiceClient, spawn_service
from repro.service.server import RESPONSE_KIND


# ----------------------------------------------------------------------
# Injectable cold executors (must be module-level: the pool pickles them)
# ----------------------------------------------------------------------
def _slow_marker_execute(request_json, cache_dir, registry_dir):
    """Drop a unique marker per *execution*, sleep, answer canned."""
    req = ExperimentRequest.from_json(request_json)
    marker = Path(cache_dir) / f"exec-{os.getpid()}-{time.time_ns()}.marker"
    marker.write_text(request_json, encoding="utf-8")
    time.sleep(0.75)
    resp = ExperimentResponse(
        req.experiment, req.scale, rendered="canned",
        request_key=req.content_key(),
    )
    return True, resp.to_json()


def _failing_execute(request_json, cache_dir, registry_dir):
    req = ExperimentRequest.from_json(request_json)
    return False, ExperimentResponse.failure(req, "injected failure").to_json()


def _markers(cache_dir) -> list:
    return sorted(Path(cache_dir).glob("exec-*.marker"))


# ----------------------------------------------------------------------
# In-process service
# ----------------------------------------------------------------------
class TestWarmPath:
    def test_cold_then_warm_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        registry = tmp_path / "registry"
        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, queue_limit=4,
            cache_dir=str(cache), registry_dir=str(registry),
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                first = client.submit(req)
                second = client.submit(req)
            snap = service.stats.snapshot()
        assert first.ok and first.served == "cold"
        assert second.ok and second.served == "warm"
        # The acceptance bar: the warm payload is the cold payload.
        assert second.text == first.text
        resp = second.response()
        assert resp.ok and resp.rendered.startswith("Table I")
        assert resp.request_key == req.content_key()
        # Durable on disk under the response kind, canonical bytes.
        stored = list(cache.glob(f"{RESPONSE_KIND}-*.json"))
        assert len(stored) == 1
        assert stored[0].read_text(encoding="utf-8") == first.text
        # The worker recorded the run in the registry like any local run.
        assert list(registry.glob("experiment-*.json"))
        assert snap["cold"] == 1 and snap["warm"] == 1
        assert snap["warm_hit_rate"] == 0.5

    def test_warm_survives_service_restart(self, tmp_path):
        cache = tmp_path / "cache"
        req = ExperimentRequest("table1", SimScale.TINY)
        kwargs = dict(port=0, workers=1, cache_dir=str(cache),
                      registry_dir="")
        with spawn_service(**kwargs) as service:
            with ServiceClient(service.host, service.port) as client:
                cold = client.submit(req)
        with spawn_service(**kwargs) as service:
            with ServiceClient(service.host, service.port) as client:
                warm = client.submit(req)
        assert cold.served == "cold" and warm.served == "warm"
        assert warm.text == cold.text


class TestCoalescing:
    def test_identical_concurrent_requests_execute_once(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        req = ExperimentRequest("fig1", SimScale.TINY)
        n = 5
        replies = []
        lock = threading.Lock()
        with spawn_service(
            port=0, workers=2, queue_limit=8, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_marker_execute,
        ) as service:

            def one():
                with ServiceClient(service.host, service.port) as client:
                    reply = client.submit(req)
                with lock:
                    replies.append(reply)

            threads = [threading.Thread(target=one) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = service.stats.snapshot()
        # M identical concurrent cold requests -> exactly one execution.
        assert len(_markers(cache)) == 1
        assert all(r.ok for r in replies)
        served = sorted(r.served for r in replies)
        assert served.count("cold") == 1
        assert served.count("coalesced") == n - 1
        # ... and M identical responses.
        assert len({r.text for r in replies}) == 1
        assert snap["coalesced"] == n - 1
        assert snap["coalescing_ratio"] == pytest.approx(
            (n - 1) / n, abs=1e-4
        )

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        reqs = [ExperimentRequest("fig1", SimScale.TINY),
                ExperimentRequest("fig1", SimScale.SMALL)]
        with spawn_service(
            port=0, workers=2, queue_limit=8, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_marker_execute,
        ) as service:
            threads = []
            for req in reqs:
                def one(r=req):
                    with ServiceClient(service.host, service.port) as c:
                        assert c.submit(r).ok
                threads.append(threading.Thread(target=one))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(_markers(cache)) == 2


class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        first = ExperimentRequest("fig1", SimScale.TINY)
        second = ExperimentRequest("fig2", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, queue_limit=1, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_marker_execute,
        ) as service:
            done = []
            def leader():
                with ServiceClient(service.host, service.port) as c:
                    done.append(c.submit(first))
            t = threading.Thread(target=leader)
            t.start()
            # The first execution has provably started once its marker
            # lands, so the inflight slot is taken.
            deadline = time.monotonic() + 10
            while not _markers(cache) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert _markers(cache), "leader execution never started"
            with ServiceClient(service.host, service.port) as client:
                rejected = client.submit(second)
                assert rejected.status == 429
                assert rejected.retry_after == 1.0
                assert "queue" in rejected.json()["error"]
                # Honouring Retry-After eventually gets an answer.
                retried = client.submit_retrying(second, max_wait_s=30)
            t.join()
            snap = service.stats.snapshot()
        assert retried.ok and retried.served == "cold"
        assert done and done[0].ok
        assert snap["rejected"] >= 1


class TestErrorPaths:
    def test_execution_failure_is_500_and_not_cached(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        req = ExperimentRequest("fig1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, queue_limit=4, cache_dir=str(cache),
            registry_dir="", execute_fn=_failing_execute,
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                first = client.submit(req)
                second = client.submit(req)
            snap = service.stats.snapshot()
        assert first.status == 500
        resp = first.response()
        assert not resp.ok and resp.error == "injected failure"
        # Failures never enter the warm store: the retry is cold again.
        assert second.status == 500 and second.served == "cold"
        assert not list(cache.glob(f"{RESPONSE_KIND}-*.json"))
        assert snap["errors"] == 2

    def test_malformed_and_unknown_requests_are_400(self, tmp_path):
        with spawn_service(
            port=0, workers=1, cache_dir="", registry_dir="",
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                bad_json = client._request("POST", "/v1/experiment",
                                           "{not json")
                unknown = client._request(
                    "POST", "/v1/experiment",
                    json.dumps({"schema_version": 1, "experiment": "fig99"}),
                )
                bad_schema = client._request(
                    "POST", "/v1/experiment",
                    json.dumps({"schema_version": 99,
                                "experiment": "fig1"}),
                )
                missing = client._request("GET", "/v1/nope")
            snap = service.stats.snapshot()
        assert bad_json.status == 400
        assert unknown.status == 400 and "fig99" in unknown.json()["error"]
        assert bad_schema.status == 400
        assert "schema_version" in bad_schema.json()["error"]
        assert missing.status == 404
        assert "routes" in missing.json()
        assert snap["bad_requests"] == 3


class TestIntrospection:
    def test_health_stats_and_experiment_listing(self, tmp_path):
        with spawn_service(
            port=0, workers=1, cache_dir="", registry_dir="",
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                health = client.health()
                listing = client.experiments()
                stats = client.stats()
        assert health["ok"] is True
        assert health["queue_limit"] == service.queue_limit
        assert "report" in listing["experiments"]
        assert "table1" in listing["experiments"]
        assert set(listing["scales"]) == {s.value for s in SimScale}
        assert stats["requests"] >= 2


# ----------------------------------------------------------------------
# The real daemon, end to end (the CI service-smoke target)
# ----------------------------------------------------------------------
class TestDaemonSmoke:
    def test_daemon_smoke_cold_warm_shutdown(self, tmp_path):
        """Start ``runner serve``, go cold, re-issue warm, shut down."""
        cache = tmp_path / "cache"
        registry = tmp_path / "registry"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        env["REPRO_CACHE_DIR"] = str(cache)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", "serve",
             "--port", "0", "--workers", "1",
             "--registry", str(registry)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r"listening on http://([\d.]+):(\d+)", banner)
            assert match, f"no banner, got: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            with ServiceClient(host, port, timeout=120) as client:
                client.wait_ready(budget_s=30)
                req = ExperimentRequest("table1", SimScale.TINY)
                cold = client.submit(req)
                assert cold.ok and cold.served == "cold"
                warm = client.submit(req)
                assert warm.ok and warm.served == "warm"
                assert warm.text == cold.text
                assert client.stats()["warm"] == 1
                assert client.shutdown()["stopping"] is True
            code = proc.wait(timeout=30)
            stderr = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert code == 0
        assert "[serve] stopped" in stderr
        assert list(cache.glob(f"{RESPONSE_KIND}-*.json"))
        assert list(registry.glob("experiment-*.json"))
