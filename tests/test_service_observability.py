"""End-to-end observability of the experiment service (ISSUE 9).

Covers the acceptance criteria:

- a cold request yields a registry-linked span-tree exemplar whose
  root is the service request id and whose leaves are the worker's
  kernel-launch spans;
- ``/v1/metrics`` latency-histogram ``_count`` totals exactly match
  ``/v1/stats`` request counts;
- access log and final scrape agree on totals across an idempotent
  ``/v1/shutdown`` teardown;
- the SLO gate passes a healthy workload and exits nonzero on an
  injected regression (in-process and through the real CLI);
- client retry policy honours Retry-After with capped backoff and the
  load generator reports retry counts;
- ``runner watch`` renders a dashboard from a live scrape.
"""

import io
import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import ExperimentRequest, ExperimentResponse
from repro.common.config import SimScale
from repro.service import (
    RetryPolicy,
    ServiceClient,
    gate_service_run,
    run_load,
    spawn_service,
)
from repro.service.slo import (
    check_slo,
    load_service_baseline,
    parse_slo_spec,
    save_service_baseline,
)
from repro.telemetry.metrics import (
    exposition_value,
    histogram_buckets,
    parse_prometheus,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


def _slow_execute(request_json, cache_dir, registry_dir):
    """Legacy 2-tuple fake: holds the cold slot long enough to observe."""
    req = ExperimentRequest.from_json(request_json)
    time.sleep(0.6)
    resp = ExperimentResponse(
        req.experiment, req.scale, rendered="canned",
        request_key=req.content_key(),
    )
    return True, resp.to_json()


# ----------------------------------------------------------------------
# /v1/metrics exposition vs /v1/stats accounting
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_histogram_counts_match_stats_exactly(self, tmp_path):
        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir="",
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                client.submit(req)            # cold
                client.submit(req)            # warm
                client.submit(req)            # warm
                stats = client.stats()
                parsed = parse_prometheus(client.metrics_text())

        def count(served):
            return exposition_value(
                parsed, "repro_service_request_latency_seconds_count",
                served=served,
            )

        # The latency families' _count totals ARE the stats integers.
        assert count("warm") == stats["warm"] == 2
        assert count("cold") == stats["cold"] == 1
        # Outcome counters were synced from the same snapshot source.
        assert exposition_value(
            parsed, "repro_service_responses_total", outcome="warm"
        ) == stats["warm"]
        # The scrape request itself is the only arrival after the
        # stats snapshot, and it is counted before rendering.
        assert exposition_value(
            parsed, "repro_service_requests_total"
        ) == stats["requests"] + 1
        # Gauges carry live queue state and derived rates.
        assert exposition_value(
            parsed, "repro_service_queue_limit"
        ) == service.queue_limit
        assert exposition_value(
            parsed, "repro_service_warm_hit_rate"
        ) == pytest.approx(2 / 3, abs=1e-3)
        # Worker deltas crossed the pool boundary and were merged.
        assert exposition_value(
            parsed, "repro_worker_experiment_seconds_count",
            experiment="table1", scale="tiny",
        ) == 1.0

    def test_stats_exposes_inflight_and_per_route(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        req = ExperimentRequest("fig1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, queue_limit=4, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_execute,
        ) as service:
            done = []

            def leader():
                with ServiceClient(service.host, service.port) as c:
                    done.append(c.submit(req))

            t = threading.Thread(target=leader)
            t.start()
            # Poll until the cold execution occupies the queue slot.
            with ServiceClient(service.host, service.port) as client:
                deadline = time.monotonic() + 10
                stats = client.stats()
                while (stats.get("inflight", 0) == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                    stats = client.stats()
                assert stats["inflight"] == 1
                t.join()
                final = client.stats()
        assert done and done[0].ok
        assert final["inflight"] == 0
        assert final["per_route"]["/v1/experiment"] == 1
        assert final["per_route"]["/v1/stats"] >= 2

    def test_unknown_paths_collapse_to_other_route(self, tmp_path):
        with spawn_service(
            port=0, workers=1, cache_dir="", registry_dir="",
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                client._request("GET", "/not/a/route")
                client._request("GET", "/also%20bogus")
                stats = client.stats()
        assert stats["per_route"]["other"] == 2


# ----------------------------------------------------------------------
# Request-id propagation + slow-request exemplars (span stitching)
# ----------------------------------------------------------------------
class TestRequestTracing:
    def test_every_response_carries_a_unique_request_id(self, tmp_path):
        with spawn_service(
            port=0, workers=1, cache_dir="", registry_dir="",
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                rids = [client._request("GET", "/healthz").request_id
                        for _ in range(3)]
        assert all(rids)
        assert len(set(rids)) == 3

    def test_cold_request_persists_stitched_span_tree(self, tmp_path):
        """Acceptance: exemplar root = service request id, leaves =
        worker kernel-launch spans (fig3 runs real GPU workloads)."""
        registry = tmp_path / "registry"
        req = ExperimentRequest("fig3", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir=str(registry), slow_request_s=0.0,
        ) as service:
            with ServiceClient(
                service.host, service.port, timeout=600
            ) as client:
                cold = client.submit(req)
        assert cold.ok and cold.served == "cold"
        assert cold.request_id
        exemplars = list(registry.glob("exemplar-*.json"))
        assert len(exemplars) == 1
        doc = json.loads(exemplars[0].read_text(encoding="utf-8"))
        # Registry-linked: the document names the run record the
        # worker persisted, and that record exists beside it.
        assert doc["request_id"] == cold.request_id
        assert doc["root"]["id"] == cold.request_id
        assert doc["experiment"] == "fig3" and doc["scale"] == "tiny"
        if doc["run_id"]:
            assert list(registry.glob(f"*-{doc['run_id']}.json"))
        opens = [e for e in doc["spans"] if e["ev"] == "span_open"]
        names = {e["name"] for e in opens}
        # Root of the worker tree is re-parented under the request id...
        roots = [e for e in opens if e["parent"] == cold.request_id]
        assert roots and roots[0]["name"] == "service.execute"
        # ...and the tree bottoms out in kernel-launch leaves.
        assert "experiment" in names
        assert "workload" in names
        assert "kernel_launch" in names
        # Parentage is internally consistent: every non-root span's
        # parent is another span in the same document.
        ids = {e["id"] for e in opens} | {cold.request_id}
        assert all(e["parent"] in ids for e in opens)

    def test_fast_requests_do_not_write_exemplars(self, tmp_path):
        registry = tmp_path / "registry"
        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir=str(registry), slow_request_s=3600.0,
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                assert client.submit(req).ok
        assert not list(registry.glob("exemplar-*.json"))


# ----------------------------------------------------------------------
# Access log + idempotent teardown
# ----------------------------------------------------------------------
class TestAccessLogTeardown:
    def test_access_log_agrees_with_final_state(self, tmp_path):
        log = tmp_path / "access.jsonl"
        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir="", access_log=str(log),
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                client.submit(req)
                client.submit(req)
                client.stats()
                client.metrics_text()
                client.shutdown()
        # Teardown flushed before closing: one line per request the
        # service ever accounted, shutdown round included.
        lines = [json.loads(l) for l in
                 log.read_text(encoding="utf-8").splitlines()]
        assert len(lines) == service.stats.requests
        assert service.obs.access_lines == len(lines)
        assert service.obs.dropped_access_lines == 0
        by_route = {}
        for line in lines:
            by_route[line["route"]] = by_route.get(line["route"], 0) + 1
        assert by_route == service.stats.per_route
        # Every line is one complete structured record.
        for line in lines:
            assert line["rid"] and line["status"] in (200, 429, 400)
            assert line["latency_ms"] >= 0.0
        served = [l.get("served") for l in lines
                  if l["route"] == "/v1/experiment"]
        assert sorted(served) == ["cold", "warm"]
        # Idempotent: closing again (directly or via another stop) is
        # a no-op, not a crash or a duplicate flush.
        service.obs.close()
        service.obs.close()
        assert len(log.read_text(encoding="utf-8").splitlines()) == \
            len(lines)

    def test_scrape_totals_match_access_log(self, tmp_path):
        log = tmp_path / "access.jsonl"
        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir="", access_log=str(log),
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                client.submit(req)
                client.submit(req)
                text = client.metrics_text()
                client.shutdown()
        parsed = parse_prometheus(text)
        lines = log.read_text(encoding="utf-8").splitlines()
        # The scrape reported every access line written before it; the
        # lines after it are exactly the scrape itself + the shutdown.
        assert exposition_value(
            parsed, "repro_service_access_log_lines_total"
        ) == len(lines) - 2


# ----------------------------------------------------------------------
# SLO gating
# ----------------------------------------------------------------------
class TestSloGate:
    def _run_traffic(self, tmp_path, n_warm=3):
        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir=str(tmp_path / "registry"),
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                for _ in range(1 + n_warm):
                    assert client.submit(req).ok
        return service

    def test_parse_slo_spec_validation(self):
        objs = parse_slo_spec("warm_p99_ms=50, error_rate=0.01")
        assert [o.metric for o in objs] == [
            "service/warm_p99_ms", "service/error_rate"
        ]
        assert objs[0].ceiling == 50.0
        with pytest.raises(ValueError, match="unknown SLO name"):
            parse_slo_spec("bogus_metric=1")
        with pytest.raises(ValueError, match="not a number"):
            parse_slo_spec("warm_p99_ms=fast")
        with pytest.raises(ValueError, match="name=ceiling"):
            parse_slo_spec("warm_p99_ms")

    def test_missing_metric_fails_the_gate(self):
        report = check_slo({}, parse_slo_spec("warm_p99_ms=50"))
        assert not report.ok
        assert report.entries[0].status == "missing"

    def test_gate_passes_then_fails_on_injected_regression(
        self, tmp_path, capsys
    ):
        service = self._run_traffic(tmp_path)
        # Healthy ceilings: green, and the lifetime is archived.
        assert gate_service_run(
            service, slo="warm_p99_ms=60000,error_rate=0.0"
        ) == 0
        assert list((tmp_path / "registry").glob("service-*.json"))
        # Injected regression: an absurd ceiling trips the same gate.
        assert gate_service_run(service, slo="warm_p99_ms=0.0001") == 1
        out = capsys.readouterr().err
        assert "service/warm_p99_ms" in out and "fail" in out

    def test_baseline_roundtrip_and_drift_failure(self, tmp_path):
        service = self._run_traffic(tmp_path)
        metrics = service.obs.service_metrics(service.stats.snapshot())
        base_path = tmp_path / "baseline.json"
        save_service_baseline(metrics, str(base_path))
        assert load_service_baseline(str(base_path)) == metrics
        # Same lifetime vs its own baseline: zero drift, gate green.
        assert gate_service_run(service, baseline=str(base_path)) == 0
        # Inject a latency regression into the comparison by shrinking
        # the baseline's latency expectations far below what was
        # actually measured.
        tampered = {
            k: (v / 1e4 if k.endswith("_ms") else v)
            for k, v in metrics.items()
        }
        tampered_path = tmp_path / "tampered.json"
        save_service_baseline(tampered, str(tampered_path))
        assert gate_service_run(
            service, baseline=str(tampered_path)
        ) == 1

    def test_baseline_loads_service_run_records(self, tmp_path):
        service = self._run_traffic(tmp_path)
        assert gate_service_run(service) == 0
        record = next((tmp_path / "registry").glob("service-*.json"))
        base = load_service_baseline(str(record))
        assert base["service/requests"] >= 4


# ----------------------------------------------------------------------
# Client retry policy + load-generator reporting
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_schedule_caps_and_honors_retry_after(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0)
        assert p.delay(0) == pytest.approx(0.1)
        assert p.delay(1) == pytest.approx(0.2)
        assert p.delay(10) == 1.0                    # capped
        assert p.delay(0, retry_after=3.0) == 3.0    # server wins
        assert p.delay(10, retry_after=0.5) == 1.0   # longer side wins

    def test_client_retries_through_backpressure(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        first = ExperimentRequest("fig1", SimScale.TINY)
        second = ExperimentRequest("fig2", SimScale.TINY)
        policy = RetryPolicy(attempts=50, base_delay_s=0.05,
                             max_delay_s=0.2, max_wait_s=30.0)
        with spawn_service(
            port=0, workers=1, queue_limit=1, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_execute,
        ) as service:
            done = []

            def leader():
                with ServiceClient(service.host, service.port) as c:
                    done.append(c.submit(first))

            t = threading.Thread(target=leader)
            t.start()
            deadline = time.monotonic() + 10
            probe = ServiceClient(service.host, service.port)
            while (probe.stats().get("inflight", 0) == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            retrying = ServiceClient(service.host, service.port,
                                     retry=policy)
            reply = retrying.submit(second)
            t.join()
            probe.close()
            retrying.close()
        assert reply.ok
        assert reply.retries >= 1
        assert retrying.retries_total == reply.retries

    def test_without_policy_429_surfaces(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        first = ExperimentRequest("fig1", SimScale.TINY)
        second = ExperimentRequest("fig2", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, queue_limit=1, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_execute,
        ) as service:
            done = []

            def leader():
                with ServiceClient(service.host, service.port) as c:
                    done.append(c.submit(first))

            t = threading.Thread(target=leader)
            t.start()
            with ServiceClient(service.host, service.port) as client:
                deadline = time.monotonic() + 10
                while (client.stats().get("inflight", 0) == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                bare = client.submit(second)
            t.join()
        assert bare.status == 429 and bare.retries == 0

    def test_load_report_counts_retries(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        requests = [ExperimentRequest(exp, SimScale.TINY)
                    for exp in ("fig1", "fig2", "fig3", "fig9")]
        with spawn_service(
            port=0, workers=1, queue_limit=1, cache_dir=str(cache),
            registry_dir="", execute_fn=_slow_execute,
        ) as service:
            report = run_load(
                service.host, service.port, requests, clients=4,
                retry=RetryPolicy(attempts=100, base_delay_s=0.05,
                                  max_delay_s=0.2, max_wait_s=60.0),
            )
        assert report.errors == 0
        assert all(r.ok for r in report.replies)
        # 4 distinct cold requests through a queue of 1: someone waited.
        assert report.retries >= 1
        assert report.summary()["retries"] == float(report.retries)


# ----------------------------------------------------------------------
# runner watch dashboard
# ----------------------------------------------------------------------
class TestWatch:
    def test_sparkline_rendering(self):
        from repro.service.watch import SPARK, sparkline

        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == SPARK[0] * 3
        strip = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(strip) == 4
        assert strip[0] == SPARK[0] and strip[-1] == SPARK[-1]
        assert len(sparkline(list(range(100)), width=30)) == 30

    def test_watch_renders_live_service(self, tmp_path):
        from repro.service.watch import watch

        req = ExperimentRequest("table1", SimScale.TINY)
        with spawn_service(
            port=0, workers=1, cache_dir=str(tmp_path / "cache"),
            registry_dir="",
        ) as service:
            with ServiceClient(service.host, service.port) as client:
                client.submit(req)
                client.submit(req)
            buf = io.StringIO()
            rc = watch(service.host, service.port, interval_s=0.05,
                       iterations=2, clear=False, out=buf)
        frame = buf.getvalue()
        assert rc == 0
        assert "Latency by served class" in frame
        assert "Requests by route" in frame
        assert "/v1/experiment" in frame
        assert "warm" in frame and "cold" in frame

    def test_watch_unreachable_service_exits_nonzero(self):
        from repro.service.watch import watch

        rc = watch("127.0.0.1", 1, interval_s=0.01, iterations=1,
                   clear=False, out=io.StringIO())
        assert rc == 1


# ----------------------------------------------------------------------
# The real CLI, end to end (the CI service-smoke target)
# ----------------------------------------------------------------------
class TestCliSmoke:
    def _serve(self, tmp_path, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", "serve",
             "--port", "0", "--workers", "1",
             "--registry", str(tmp_path / "registry"), *extra_args],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        banner = proc.stderr.readline()
        match = re.search(r"listening on http://([\d.]+):(\d+)", banner)
        assert match, f"no banner, got: {banner!r}"
        return proc, match.group(1), int(match.group(2))

    def _drive_and_stop(self, proc, host, port):
        with ServiceClient(host, port, timeout=120) as client:
            client.wait_ready(budget_s=30)
            req = ExperimentRequest("table1", SimScale.TINY)
            assert client.submit(req).ok
            assert client.submit(req).served == "warm"
            text = client.metrics_text()
            assert client.shutdown()["stopping"] is True
        code = proc.wait(timeout=60)
        return code, text

    def test_smoke_slo_gate_passes_on_warm_workload(self, tmp_path):
        proc, host, port = self._serve(
            tmp_path, "--slo", "warm_p99_ms=60000,error_rate=0.0",
            "--access-log", str(tmp_path / "access.jsonl"),
        )
        try:
            code, text = self._drive_and_stop(proc, host, port)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert code == 0
        parsed = parse_prometheus(text)
        buckets = histogram_buckets(
            parsed, "repro_service_request_latency_seconds",
            served="warm",
        )
        assert buckets and buckets[-1][1] == 1
        assert (tmp_path / "access.jsonl").exists()

    def test_smoke_slo_tamper_fails_nonzero(self, tmp_path):
        proc, host, port = self._serve(
            tmp_path, "--slo", "warm_p99_ms=0.0001",
        )
        try:
            code, _ = self._drive_and_stop(proc, host, port)
            stderr = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert code == 1
        assert "FAIL" in stderr

    def test_bad_slo_spec_is_a_usage_error(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", "serve",
             "--port", "0", "--slo", "warm_p99_ms=abc"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert "not a number" in proc.stderr
