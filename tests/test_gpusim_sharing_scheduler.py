"""Tests for inter-block sharing analysis and CTA scheduler policies."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.gpusim.isa import Category
from repro.gpusim.sharing import analyze_gpu_sharing
from repro.gpusim.trace import KernelTrace


def _trace_with_tx(block_addr_pairs, n_blocks=8):
    tr = KernelTrace("synthetic")
    lt = tr.new_launch("k", (n_blocks, 1), (64, 1), 16)
    lt.charge_warps(Category.ALU, np.array([32, 32], dtype=np.int64))
    for block, addrs in block_addr_pairs:
        lt.record_transactions(np.asarray(addrs, dtype=np.int64), block, False)
    return tr


class TestGPUSharing:
    def test_private_lines(self):
        tr = _trace_with_tx([(0, [0]), (1, [64]), (2, [128])])
        s = analyze_gpu_sharing(tr)
        assert s.shared_lines == 0
        assert s.shared_traffic_ratio == 0.0

    def test_shared_line_counted(self):
        tr = _trace_with_tx([(0, [0, 64]), (1, [0])])
        s = analyze_gpu_sharing(tr)
        assert s.total_lines == 2
        assert s.shared_lines == 1
        assert s.shared_traffic_ratio == pytest.approx(2 / 3)
        assert s.max_blocks_per_line == 2

    def test_empty_trace(self):
        s = analyze_gpu_sharing(KernelTrace("empty"))
        assert s.frac_lines_shared == 0.0

    def test_stencil_shares_halos(self):
        """HotSpot blocks re-read their neighbors' apron rows."""
        from repro.workloads import get
        gpu = GPU()
        get("hotspot").gpu_fn(gpu, SimScale.TINY)
        s = analyze_gpu_sharing(gpu.trace)
        assert s.frac_lines_shared > 0.2

    def test_mummer_tree_read_shared(self):
        """Every block walks the same suffix tree."""
        from repro.workloads import get
        gpu = GPU()
        get("mummer").gpu_fn(gpu, SimScale.TINY)
        s = analyze_gpu_sharing(gpu.trace)
        assert s.shared_traffic_ratio > 0.3

    def test_streaming_kernel_private(self):
        """Backprop blocks own disjoint weight rows."""
        from repro.workloads import get
        gpu = GPU()
        get("backprop").gpu_fn(gpu, SimScale.TINY)
        s = analyze_gpu_sharing(gpu.trace)
        assert s.frac_lines_shared < 0.2


class TestCtaScheduler:
    def _locality_trace(self, n_blocks=28, lines_per_block=64):
        """Adjacent blocks share all their lines (halo-like)."""
        pairs = []
        for b in range(n_blocks):
            base = (b // 2) * lines_per_block * 64
            addrs = base + np.arange(lines_per_block) * 64
            pairs.append((b, addrs))
        return _trace_with_tx(pairs, n_blocks=n_blocks)

    def test_chunked_improves_l1_locality(self):
        tr = self._locality_trace()
        # L1 only: the unified L2 would absorb cross-SM reuse and mask
        # the placement effect (verified below).
        base = GPUConfig.gtx480_l1_bias().replace(l2_size=0)
        rr = TimingModel(base.replace(cta_scheduler="round_robin")).time(tr)
        ch = TimingModel(base.replace(cta_scheduler="chunked")).time(tr)
        # Round-robin separates the sharing pairs onto different SMs,
        # duplicating their lines' DRAM fetches.
        assert ch.dram_bytes < rr.dram_bytes

    def test_l2_masks_placement_effect(self):
        tr = self._locality_trace()
        base = GPUConfig.gtx480_l1_bias()
        rr = TimingModel(base.replace(cta_scheduler="round_robin")).time(tr)
        ch = TimingModel(base.replace(cta_scheduler="chunked")).time(tr)
        assert ch.dram_bytes == rr.dram_bytes

    def test_policies_identical_without_caches(self):
        tr = self._locality_trace()
        cfg = GPUConfig.sim_default()
        rr = TimingModel(cfg.replace(cta_scheduler="round_robin")).time(tr)
        ch = TimingModel(cfg.replace(cta_scheduler="chunked")).time(tr)
        assert rr.cycles == ch.cycles

    def test_default_is_round_robin(self):
        assert GPUConfig.sim_default().cta_scheduler == "round_robin"
