"""Tests for the private-cache write-invalidate coherence simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpusim.coherence import CoherenceStats, simulate_coherent_caches


def _trace(triples):
    a = np.array([t[0] for t in triples], dtype=np.int64)
    tid = np.array([t[1] for t in triples], dtype=np.int16)
    wr = np.array([t[2] for t in triples], dtype=bool)
    return a, tid, wr


def run(triples, **kw):
    return simulate_coherent_caches(*_trace(triples), **kw)


class TestProtocol:
    def test_private_reads_hit(self):
        stats = run([(0, 0, False), (0, 0, False), (0, 0, False)])
        assert stats.misses == 1 and stats.cold_misses == 1
        assert stats.invalidations == 0

    def test_write_invalidates_reader(self):
        stats = run([
            (0, 0, False),   # core 0 reads line
            (0, 1, True),    # core 1 writes -> invalidate core 0's copy
            (0, 0, False),   # core 0 re-reads -> coherence miss
        ])
        assert stats.invalidations == 1
        assert stats.coherence_misses == 1

    def test_read_does_not_invalidate(self):
        stats = run([(0, 0, False), (0, 1, False), (0, 0, False)])
        assert stats.invalidations == 0
        assert stats.misses == 2  # one cold per core

    def test_ping_pong(self):
        triples = [(0, t % 2, True) for t in range(10)]
        stats = run(triples)
        assert stats.invalidations == 9
        assert stats.coherence_misses == 8  # all but the two cold installs

    def test_writeback_on_dirty_eviction(self):
        # One set (cache of 2 ways x 64B lines): write three lines.
        stats = run(
            [(0, 0, True), (64, 0, True), (128, 0, True)],
            cache_bytes_per_core=128, assoc=2,
        )
        assert stats.writebacks == 1

    def test_false_sharing_detected(self):
        # Two threads write different words of the SAME line.
        triples = []
        for i in range(6):
            triples.append((0, 0, True))
            triples.append((8, 1, True))
        stats = run(triples)
        assert stats.invalidations >= 10
        # Neither thread ever touches the other's word: pure false sharing.
        assert stats.false_sharing_invalidations == stats.invalidations
        assert stats.false_sharing_fraction == 1.0

    def test_true_sharing_classified(self):
        # Both threads read and write the SAME word.
        triples = [(0, t % 2, True) for t in range(8)]
        stats = run(triples)
        assert stats.invalidations >= 6
        assert stats.true_sharing_invalidations == stats.invalidations
        assert stats.false_sharing_fraction == 0.0

    def test_mixed_sharing_partition(self):
        rng = np.random.default_rng(5)
        triples = [
            (int(a) * 8, int(t), bool(w))
            for a, t, w in zip(
                rng.integers(0, 64, 2000),   # few lines -> much sharing
                rng.integers(0, 4, 2000),
                rng.random(2000) < 0.5,
            )
        ]
        stats = run(triples)
        assert (stats.true_sharing_invalidations
                + stats.false_sharing_invalidations) == stats.invalidations

    def test_miss_classes_partition(self):
        rng = np.random.default_rng(0)
        triples = [
            (int(a) * 8, int(t), bool(w))
            for a, t, w in zip(
                rng.integers(0, 4096, 3000),
                rng.integers(0, 8, 3000),
                rng.random(3000) < 0.3,
            )
        ]
        stats = run(triples, cache_bytes_per_core=16 * 1024)
        assert stats.cold_misses + stats.coherence_misses + stats.capacity_misses == stats.misses
        assert stats.capacity_misses >= 0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 3), st.booleans()),
        min_size=1, max_size=300,
    ))
    def test_invariants(self, raw):
        triples = [(a * 16, t, w) for a, t, w in raw]
        stats = run(triples, cache_bytes_per_core=4096)
        assert 0 <= stats.misses <= stats.accesses
        assert 0 <= stats.cold_misses <= stats.misses
        assert 0 <= stats.coherence_misses <= stats.misses
        assert stats.capacity_misses >= 0
        assert 0.0 <= stats.coherence_miss_fraction <= 1.0


class TestAgainstSharedCache:
    def test_read_only_trace_matches_partitioned_private(self):
        """With thread-private data, private caches see only cold misses."""
        triples = [(tid * 65536 + i * 8, tid, False)
                   for tid in range(4) for i in range(200)]
        stats = run(triples, cache_bytes_per_core=64 * 1024)
        assert stats.misses == stats.cold_misses
        assert stats.coherence_misses == 0

    def test_workload_integration(self):
        from repro.common.config import SimScale
        from repro.cpusim import Machine
        from repro.workloads import get

        machine = Machine()
        get("canneal").cpu_fn(machine, SimScale.TINY)
        stats = simulate_coherent_caches(*machine.trace())
        # Concurrent swaps on the shared placement must produce
        # invalidation traffic.
        assert stats.invalidations > 0
        assert stats.miss_rate > 0
