"""MEDIUM-scale smoke tests.

The benchmark harness runs at SMALL; these confirm a representative
workload subset also verifies at MEDIUM (larger grids, deeper loops),
guarding the scale knob itself against size-dependent bugs (tile
boundary conditions, grid-coverage arithmetic, convergence caps).
"""

import pytest

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.workloads import get

# Chosen for size-sensitive logic: 2-D tiling (hotspot), wavefront
# geometry (nw), persistent blocks + column chunking (leukocyte).
GPU_SUBSET = ["hotspot", "nw", "leukocyte"]
CPU_SUBSET = ["hotspot", "canneal", "raytrace"]


@pytest.mark.parametrize("name", GPU_SUBSET)
def test_gpu_medium(name):
    defn = get(name)
    gpu = GPU()
    result = defn.gpu_fn(gpu, SimScale.MEDIUM)
    defn.check_gpu(result, SimScale.MEDIUM)
    assert gpu.trace.thread_insts > 0


@pytest.mark.parametrize("name", CPU_SUBSET)
def test_cpu_medium(name):
    defn = get(name)
    machine = Machine()
    result = defn.cpu_fn(machine, SimScale.MEDIUM)
    defn.check_cpu(result, SimScale.MEDIUM)
    assert machine.n_accesses > 0


def test_medium_strictly_bigger_than_tiny():
    defn = get("hotspot")
    g_tiny, g_med = GPU(), GPU()
    defn.gpu_fn(g_tiny, SimScale.TINY)
    defn.gpu_fn(g_med, SimScale.MEDIUM)
    assert g_med.trace.thread_insts > 4 * g_tiny.trace.thread_insts
