"""The typed experiment API (repro.api): encoding, keys, shim, CLI.

The request/response dataclasses are the single encoding shared by the
service wire format, ``run_experiment()``, registry records, and the
report layer — so these tests pin the encoding itself (canonical
bytes, content keys, schema versioning) and every integration seam.
"""

import json
import warnings

import pytest

from repro.api import (
    OVERRIDABLE_CONFIG,
    SCHEMA_VERSION,
    ExperimentRequest,
    ExperimentResponse,
    execute,
    validate_overrides,
)
from repro.common.config import SimScale


class TestExperimentRequest:
    def test_roundtrip_dict_and_json(self):
        req = ExperimentRequest("fig1", SimScale.TINY,
                                config={"gpu_plan": False})
        assert ExperimentRequest.from_dict(req.to_dict()) == req
        assert ExperimentRequest.from_json(req.to_json()) == req

    def test_scale_coerces_from_string(self):
        assert ExperimentRequest("fig1", "tiny").scale is SimScale.TINY

    def test_content_key_is_stable_and_order_insensitive(self):
        a = ExperimentRequest(
            "fig1", SimScale.SMALL,
            config={"gpu_plan": True, "gpu_batch_lanes": 64},
        )
        b = ExperimentRequest(
            "fig1", SimScale.SMALL,
            config={"gpu_batch_lanes": 64, "gpu_plan": True},
        )
        assert a.content_key() == b.content_key()
        assert len(a.content_key()) == 16

    def test_content_key_separates_asks(self):
        keys = {
            ExperimentRequest("fig1", SimScale.TINY).content_key(),
            ExperimentRequest("fig1", SimScale.SMALL).content_key(),
            ExperimentRequest("fig2", SimScale.TINY).content_key(),
            ExperimentRequest(
                "fig1", SimScale.TINY, config={"gpu_plan": False}
            ).content_key(),
        }
        assert len(keys) == 4

    def test_rejects_unknown_override(self):
        with pytest.raises(ValueError, match="cache_dir"):
            ExperimentRequest("fig1", config={"cache_dir": "/elsewhere"})

    def test_rejects_badly_typed_override(self):
        with pytest.raises(ValueError, match="gpu_plan"):
            ExperimentRequest("fig1", config={"gpu_plan": "yes"})
        with pytest.raises(ValueError, match="gpu_batch_lanes"):
            ExperimentRequest("fig1", config={"gpu_batch_lanes": True})

    def test_rejects_wrong_schema_version(self):
        body = ExperimentRequest("fig1").to_dict()
        body["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentRequest.from_dict(body)

    def test_rejects_unknown_fields_and_missing_experiment(self):
        with pytest.raises(ValueError, match="unknown fields"):
            ExperimentRequest.from_dict(
                {"schema_version": SCHEMA_VERSION, "experiment": "fig1",
                 "surprise": 1}
            )
        with pytest.raises(ValueError, match="experiment"):
            ExperimentRequest.from_dict({"schema_version": SCHEMA_VERSION})

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            ExperimentRequest.from_dict(
                {"schema_version": SCHEMA_VERSION, "experiment": "fig1",
                 "scale": "galactic"}
            )

    def test_validate_overrides_normalizes_numbers(self):
        out = validate_overrides({"gpu_batch_lanes": 64.0})
        assert out == {"gpu_batch_lanes": 64}
        assert set(OVERRIDABLE_CONFIG) >= set(out)


class TestExperimentResponse:
    def test_canonical_json_is_deterministic(self):
        resp = ExperimentResponse(
            "fig1", SimScale.TINY, metrics={"b": 2.0, "a": 1.0}
        )
        text = resp.to_json()
        assert text == ExperimentResponse.from_json(text).to_json()
        # sorted keys at every level
        body = json.loads(text)
        assert list(body["metrics"]) == ["a", "b"]

    def test_rejects_wrong_schema_version(self):
        body = ExperimentResponse("fig1", SimScale.TINY).to_dict()
        body["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentResponse.from_dict(body)

    def test_execute_wraps_failures(self):
        resp = execute(ExperimentRequest("fig99", SimScale.TINY))
        assert not resp.ok
        assert resp.status == "error"
        assert "fig99" in resp.error

    def test_execute_produces_registry_encoding(self):
        from repro.fidelity.registry import flatten_metrics

        req = ExperimentRequest("table1", SimScale.TINY)
        resp = execute(req)
        assert resp.ok
        assert resp.request_key == req.content_key()
        assert resp.rendered.startswith("Table I")
        # Metrics use the exact flattening the registry/drift gate use.
        from repro.experiments import run_experiment

        result = run_experiment(ExperimentRequest("table1", SimScale.TINY))
        assert resp.metrics == flatten_metrics("table1", result.data)


class TestRunExperimentRequestForm:
    def test_request_object_is_the_canonical_spelling(self):
        from repro.experiments import ExperimentResult, run_experiment

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = run_experiment(ExperimentRequest("table1", SimScale.TINY))
        assert isinstance(res, ExperimentResult)
        assert res.metadata["request"] == (
            ExperimentRequest("table1", SimScale.TINY).to_dict()
        )

    def test_legacy_spelling_warns_and_matches(self):
        from repro.experiments import run_experiment

        with pytest.warns(DeprecationWarning, match="ExperimentRequest"):
            legacy = run_experiment("table1", SimScale.TINY)
        modern = run_experiment(ExperimentRequest("table1", SimScale.TINY))
        assert legacy.data == modern.data

    def test_request_plus_scale_is_an_error(self):
        from repro.experiments import run_experiment

        with pytest.raises(TypeError, match="inside ExperimentRequest"):
            run_experiment(
                ExperimentRequest("table1", SimScale.TINY), SimScale.TINY
            )

    def test_config_override_applies_during_driver(self):
        from repro.common.config import config
        from repro.experiments import ExperimentResult

        seen = {}

        def probe(scale):
            seen["lanes"] = config().gpu_batch_lanes
            return ExperimentResult("table1", [], {})

        from repro import experiments as exp_mod

        real = exp_mod.get_driver
        exp_mod.get_driver = lambda e: probe
        try:
            exp_mod.run_experiment(
                ExperimentRequest(
                    "table1", SimScale.TINY,
                    config={"gpu_batch_lanes": 1234},
                )
            )
        finally:
            exp_mod.get_driver = real
        assert seen["lanes"] == 1234

    def test_registry_record_carries_request_encoding(self, tmp_path):
        from repro.common.config import override
        from repro.fidelity import RunRegistry
        from repro.experiments import run_experiment

        req = ExperimentRequest("table1", SimScale.TINY)
        with override(registry_dir=str(tmp_path)):
            run_experiment(req)
        records = RunRegistry(tmp_path).records(kind="experiment")
        assert len(records) == 1
        assert records[0].meta["request"] == req.to_dict()


class TestReportLayerEncoding:
    def test_render_response_ok_and_error(self):
        from repro.core.report import render_response

        ok = ExperimentResponse(
            "fig1", SimScale.TINY, rendered="BODY",
            request_key="abc", run_id="r1", duration_s=1.25,
        )
        text = render_response(ok)
        assert "BODY" in text
        assert "fig1@tiny" in text and "run=r1" in text
        bad = ExperimentResponse.failure(
            ExperimentRequest("fig1", SimScale.TINY), "boom"
        )
        assert "ERROR: boom" in render_response(bad)


class TestRunnerSubcommands:
    def test_flat_invocation_aliases_to_run(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--scale", "tiny", "--registry", "off"]) == 0
        flat = capsys.readouterr().out
        assert main(["run", "table1", "--scale", "tiny",
                     "--registry", "off"]) == 0
        sub = capsys.readouterr().out
        assert "Table I" in flat
        assert flat == sub

    def test_unknown_experiment_still_raises_keyerror(self):
        from repro.experiments.runner import main

        with pytest.raises(KeyError):
            main(["run", "fig99", "--scale", "tiny"])

    def test_serve_help_exists(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "queue-limit" in capsys.readouterr().out

    def test_bench_help_exists(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as exc:
            main(["bench", "--help"])
        assert exc.value.code == 0
        assert "--clients" in capsys.readouterr().out

    def test_goldens_help_exists(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as exc:
            main(["goldens", "--help"])
        assert exc.value.code == 0
