"""Tests for the experimental Parsec GPU ports (Section V-B)."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.gpusim import GPU
from repro.gpusim.divergence import analyze_divergence
from repro.workloads import base as wl
from repro.workloads.parsec import blackscholes, raytrace

SCALE = SimScale.TINY


class TestBlackscholesPort:
    def test_matches_reference(self):
        gpu = GPU()
        result = blackscholes.gpu_port_run(gpu, SCALE)
        blackscholes.check_gpu_port(result, SCALE)

    def test_matches_cpu_twin(self):
        from repro.cpusim import Machine
        gpu = GPU()
        gpu_prices = blackscholes.gpu_port_run(gpu, SCALE)
        machine = Machine()
        cpu_prices = blackscholes.cpu_run(machine, SCALE)
        np.testing.assert_allclose(gpu_prices, cpu_prices, rtol=1e-12)

    def test_easy_port_profile(self):
        """No divergence, no shared memory, pure streaming."""
        gpu = GPU()
        blackscholes.gpu_port_run(gpu, SCALE)
        tr = gpu.trace
        div = analyze_divergence(tr)
        assert div.simd_efficiency > 0.95
        assert tr.mem_mix()["global"] > 0.95


class TestRaytracePort:
    def test_matches_reference(self):
        gpu = GPU()
        result = raytrace.gpu_port_run(gpu, SCALE)
        raytrace.check_gpu_port(result, SCALE)

    def test_matches_cpu_twin(self):
        from repro.cpusim import Machine
        gpu = GPU()
        img_gpu = raytrace.gpu_port_run(gpu, SCALE)
        machine = Machine()
        img_cpu = raytrace.cpu_run(machine, SCALE)
        np.testing.assert_allclose(img_gpu, img_cpu, rtol=1e-8, atol=1e-12)

    def test_hard_port_profile(self):
        """Divergent BVH walks: MUMmer-like warp behaviour."""
        gpu = GPU()
        raytrace.gpu_port_run(gpu, SCALE)
        tr = gpu.trace
        div = analyze_divergence(tr)
        buckets = tr.occupancy_buckets()
        assert div.simd_efficiency < 0.8
        assert buckets["1-8"] + buckets["9-16"] > 0.3
        # The BVH rides in texture memory, like MUMmer's suffix tree.
        assert tr.mem_mix()["tex"] > 0.3


class TestRegistryUnchanged:
    def test_parsec_suite_remains_cpu_only(self):
        """The ports are experimental; the registry keeps the paper's
        suite structure (Parsec = CPU suites)."""
        wl.load_all()
        for d in wl.all_parsec():
            assert d.gpu_fn is None, d.meta.name


class TestPortExperiment:
    def test_driver_runs_and_orders(self):
        from repro.experiments import get_driver
        res = get_driver("ext_parsec_ports")(SCALE)
        d = res.data
        # The easy port runs at full SIMD efficiency; the hard port
        # diverges — exactly the Section V-B contrast.
        assert d["blackscholes(P)"]["simd_eff"] > d["raytrace(P)"]["simd_eff"]
        assert d["raytrace(P)"]["low_occ"] > 0.3
        assert d["rodinia_median_ipc"] > 0
