"""Tests for the synthetic input generators."""

import networkx as nx
import numpy as np
import pytest

from repro.inputs.graphs import bfs_source, random_graph_csr
from repro.inputs.images import cell_image, heart_sequence, photo, speckled_ultrasound, video_sequence
from repro.inputs.meshes import cfd_mesh, tet_spring_mesh
from repro.inputs.misc import (
    dedup_stream,
    feature_database,
    netlist,
    option_portfolio,
    swaption_portfolio,
    transaction_db,
)
from repro.inputs.points import clustered_points, particle_box
from repro.inputs.sequences import blosum_like_matrix, random_sequence, reads_from_reference


class TestGraphs:
    def test_csr_well_formed(self):
        row, col = random_graph_csr(500, 4)
        assert row[0] == 0
        assert row[-1] == col.size
        assert (np.diff(row) >= 0).all()
        assert col.min() >= 0 and col.max() < 500

    def test_connected_from_source(self):
        n = 300
        row, col = random_graph_csr(n, 4)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u in range(n):
            for v in col[row[u]:row[u + 1]]:
                g.add_edge(u, int(v))
        # The Hamiltonian backbone guarantees strong reachability from
        # the backbone start; BFS reference requires every node reached
        # from the chosen source.
        src = bfs_source(n)
        reached = nx.descendants(g, src) | {src}
        # Our BFS checks use cost == -1 for unreached nodes; the graph
        # must match the networkx reachability exactly.
        from repro.workloads.rodinia.bfs import reference
        cost = reference({"n": n, "deg": 4})
        assert {i for i in range(n) if cost[i] >= 0} == reached

    def test_deterministic(self):
        a = random_graph_csr(100, 3)
        b = random_graph_csr(100, 3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestImages:
    def test_ultrasound_positive(self):
        img = speckled_ultrasound(32, 48)
        assert img.shape == (32, 48)
        assert (img > 0).all()

    def test_heart_sequence_radii_oscillate(self):
        frames, inner, outer = heart_sequence(8, 64, 64)
        assert frames.shape == (8, 64, 64)
        assert inner.max() > inner.min()
        assert (outer > inner).all()

    def test_cells_separated(self):
        img, centers = cell_image(80, 160, 4, 6.0)
        for i in range(len(centers)):
            for j in range(i + 1, len(centers)):
                d = np.hypot(*(centers[i] - centers[j]))
                assert d >= 5 * 6.0 - 1e-9

    def test_video_and_photo_ranges(self):
        v = video_sequence(3, 32, 32)
        p = photo(33, 47)
        assert v.shape == (3, 32, 32)
        assert p.shape == (33, 47)
        assert p.min() >= 0.0 and p.max() <= 1.0


class TestMeshes:
    def test_cfd_mesh_symmetric_adjacency(self):
        mesh = cfd_mesh(6, 5, 2)
        for e in range(mesh.n_elements):
            for f in range(4):
                nb = mesh.neighbors[e, f]
                if nb >= 0:
                    assert e in mesh.neighbors[nb], (e, nb)

    def test_cfd_mesh_boundaries_marked(self):
        mesh = cfd_mesh(4, 4, 2)
        assert (mesh.neighbors == -1).sum() > 0

    def test_spring_mesh_edges_valid(self):
        pos, edges = tet_spring_mesh(4, 4, 4)
        assert edges.min() >= 0 and edges.max() < pos.shape[0]
        assert (edges[:, 0] != edges[:, 1]).all()


class TestMisc:
    def test_options_ranges(self):
        o = option_portfolio(100)
        assert (o["volatility"] > 0).all()
        assert (o["expiry"] > 0).all()

    def test_swaptions_curves(self):
        s = swaption_portfolio(8)
        assert s["initial_curve"].shape == (8, 11)

    def test_netlist_is_permutation(self):
        fan, loc = netlist(256, 32)
        assert np.unique(loc).size == 256
        assert fan.shape == (256, 4)

    def test_transactions_unique_items(self):
        db = transaction_db(50, 32)
        for txn in db:
            assert np.unique(txn).size == txn.size

    def test_dedup_stream_has_duplicates(self):
        data = dedup_stream(64 * 1024, dup_rate=0.6)
        blocks = data[: len(data) // 512 * 512].reshape(-1, 512)
        uniq = {bytes(b.tolist()) for b in blocks}
        assert len(uniq) < blocks.shape[0]

    def test_feature_db_normalized(self):
        db = feature_database(64, 16)
        np.testing.assert_allclose(np.linalg.norm(db, axis=1), 1.0)


class TestPointsAndSequences:
    def test_clustered_points_shape(self):
        pts, labels = clustered_points(200, 8, 5)
        assert pts.shape == (200, 8)
        assert labels.max() < 5

    def test_particles_in_box(self):
        pos, vel = particle_box(100)
        assert (pos >= 0).all() and (pos <= 1).all()

    def test_sequences_alphabet(self):
        s = random_sequence(1000)
        assert s.min() >= 0 and s.max() < 4

    def test_reads_mostly_match_reference(self):
        ref = random_sequence(2000)
        reads = reads_from_reference(ref, 50, 25, error_rate=0.0)
        s = bytes(ref.tolist())
        for r in reads:
            assert s.find(bytes(r.tolist())) >= 0

    def test_substitution_matrix_symmetric(self):
        m = blosum_like_matrix()
        np.testing.assert_array_equal(m, m.T)
        assert (np.diag(m) > 0).all()
