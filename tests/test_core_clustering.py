"""Tests for hierarchical clustering (validated against scipy)."""

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dendrogram, fcluster, linkage
from repro.core.clustering import cophenetic_distances, pdist

METHODS = ["single", "complete", "average", "ward"]


def _blobs(seed, n=12, d=4):
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, (n, d))
    x[: n // 3] += 6
    x[n // 3 : 2 * n // 3] -= 6
    return x


def _canon(labels):
    seen = {}
    return tuple(seen.setdefault(v, len(seen)) for v in labels)


class TestPdist:
    def test_matches_scipy(self):
        x = _blobs(0)
        np.testing.assert_allclose(pdist(x), ssd.squareform(ssd.pdist(x)),
                                   atol=1e-10)


class TestLinkage:
    @pytest.mark.parametrize("method", METHODS)
    def test_heights_match_scipy(self, method):
        x = _blobs(1)
        z_ours = linkage(x, method)
        z_scipy = sch.linkage(ssd.pdist(x), method=method)
        np.testing.assert_allclose(
            np.sort(z_ours[:, 2]), np.sort(z_scipy[:, 2]), atol=1e-8
        )

    @pytest.mark.parametrize("method", METHODS)
    def test_flat_clusters_match_scipy(self, method):
        x = _blobs(2)
        ours = fcluster(linkage(x, method), 3)
        theirs = sch.fcluster(sch.linkage(ssd.pdist(x), method=method), 3,
                              criterion="maxclust")
        assert _canon(ours) == _canon(theirs)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_average_matches_scipy_random(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0.0, 1.0, (10, 3))
        z_ours = linkage(x, "average")
        z_scipy = sch.linkage(ssd.pdist(x), method="average")
        np.testing.assert_allclose(
            np.sort(z_ours[:, 2]), np.sort(z_scipy[:, 2]), atol=1e-8
        )

    def test_merge_sizes_accumulate(self):
        z = linkage(_blobs(3), "average")
        assert z[-1, 3] == 12

    def test_heights_monotone_for_average(self):
        z = linkage(_blobs(4), "average")
        assert (np.diff(z[:, 2]) >= -1e-9).all()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            linkage(_blobs(0), "centroid")

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linkage(np.zeros((1, 3)))


class TestFcluster:
    def test_n_clusters_respected(self):
        z = linkage(_blobs(5), "average")
        for k in (1, 2, 3, 6, 12):
            labels = fcluster(z, k)
            assert len(set(labels.tolist())) == k

    def test_blob_structure_recovered(self):
        x = _blobs(6)
        labels = fcluster(linkage(x, "average"), 3)
        # Points within a blob share a label.
        assert len(set(labels[:4].tolist())) == 1
        assert len(set(labels[4:8].tolist())) == 1
        assert len(set(labels[8:].tolist())) == 1

    def test_out_of_range(self):
        z = linkage(_blobs(7), "average")
        with pytest.raises(ValueError):
            fcluster(z, 0)
        with pytest.raises(ValueError):
            fcluster(z, 13)


class TestCophenetic:
    def test_matches_scipy(self):
        x = _blobs(8)
        z = linkage(x, "average")
        ours = cophenetic_distances(z)
        theirs = ssd.squareform(sch.cophenet(sch.linkage(ssd.pdist(x), "average")))
        np.testing.assert_allclose(np.sort(ours.ravel()),
                                   np.sort(theirs.ravel()), atol=1e-8)


class TestDendrogram:
    def test_render_contains_all_labels(self):
        x = _blobs(9)
        labels = [f"wl{i}" for i in range(12)]
        out = Dendrogram(linkage(x, "average"), labels).render()
        for lbl in labels:
            assert lbl in out

    def test_leaf_order_is_permutation(self):
        d = Dendrogram(linkage(_blobs(10), "average"),
                       [str(i) for i in range(12)])
        assert sorted(d.leaf_order()) == list(range(12))

    def test_label_count_checked(self):
        with pytest.raises(ValueError):
            Dendrogram(linkage(_blobs(11), "average"), ["a", "b"])
