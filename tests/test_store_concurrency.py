"""Cross-process store hammering: the concurrency contract, enforced.

The artifact cache and the run registry promise lock-free torn-free
reads, per-key-prefix locked atomic writes, and TOCTOU-tolerant
pruning (see the module docstrings).  These tests drive both stores
from ``HAMMER_PROCS`` concurrent worker processes and compare the
surviving bytes against a serial oracle — same operations, one
process — so any lost write, torn read, or corrupted payload is a
hard failure, not a flake.
"""

import json
import os
import random
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.common.config import SimScale
from repro.common.locks import FileLock, LockTimeout, store_lock
from repro.core.artifacts import ArtifactCache
from repro.fidelity.registry import RunRecord, RunRegistry

#: The acceptance bar: eight concurrent writer processes per store.
HAMMER_PROCS = 8
KEYS = 24


# ----------------------------------------------------------------------
# Deterministic workloads (shared by the hammer and the serial oracle)
# ----------------------------------------------------------------------
def _cache_items():
    """(name, key, payload-text) triples; one canonical payload per key."""
    items = []
    for i in range(KEYS):
        key = f"{i:012x}"
        payload = json.dumps(
            {"experiment": f"k{i}", "value": i * 1.5, "blob": "x" * (i * 7)},
            sort_keys=True, separators=(",", ":"),
        )
        items.append((f"k{i}", key, payload))
    return items


def _registry_records():
    """Deterministic records: fixed timestamps, content-hash run ids."""
    records = []
    for i in range(KEYS):
        rec = RunRecord(
            kind="experiment", scale="tiny", experiments=[f"e{i}"],
            metrics={f"e{i}/metric": float(i)},
            timestamp="2026-08-08T00:00:00+0000",
        ).stamp()
        records.append(rec)
    return records


def _dir_bytes(root, pattern):
    return {p.name: p.read_bytes() for p in Path(root).glob(pattern)}


# ----------------------------------------------------------------------
# Worker bodies (module-level: the pool pickles them by reference)
# ----------------------------------------------------------------------
def _cache_worker(root, worker_id):
    """Write every key (shuffled per worker) while reading the others.

    Returns the number of torn reads observed (must be zero: a read
    either misses or yields the key's one canonical payload).
    """
    cache = ArtifactCache(root)
    rng = random.Random(worker_id)
    items = _cache_items()
    order = list(items)
    rng.shuffle(order)
    torn = 0
    for name, key, payload in order:
        cache.put_json("resp", name, SimScale.TINY, key, payload)
        probe_name, probe_key, probe_payload = items[rng.randrange(len(items))]
        seen = cache.get_json("resp", probe_name, SimScale.TINY, probe_key)
        if seen is not None and seen != probe_payload:
            torn += 1
    return torn


def _registry_worker(root, worker_id):
    """Save every record (shuffled) while scanning; returns bad reads."""
    registry = RunRegistry(root)
    rng = random.Random(1000 + worker_id)
    records = _registry_records()
    rng.shuffle(records)
    bad = 0
    for n, rec in enumerate(records):
        registry.save(rec)
        if n % 5 == 0:
            for loaded in registry.records(kind="experiment"):
                # Every record visible mid-hammer must be complete.
                if loaded.run_id != loaded.content_key():
                    bad += 1
    return bad


def _prune_worker(root, worker_id, budget):
    """Interleave puts with explicit budget-driven prunes."""
    cache = ArtifactCache(root)
    rng = random.Random(2000 + worker_id)
    for i in range(30):
        key = f"{rng.randrange(1 << 40):012x}"
        cache.put_json(
            "resp", f"w{worker_id}n{i}", SimScale.TINY, key,
            json.dumps({"w": worker_id, "i": i}),
        )
        if i % 3 == 0:
            cache.prune(max_entries=budget)
    return 0


def _registry_prune_worker(root, worker_id, keep):
    registry = RunRegistry(root)
    for i in range(20):
        registry.save(
            RunRecord(
                kind="experiment", scale="tiny",
                experiments=[f"w{worker_id}e{i}"],
                metrics={f"w{worker_id}e{i}/m": float(i)},
            )
        )
        registry.prune(keep)
        registry.records()  # must never raise mid-prune
    return 0


def _hammer(fn, root, *extra):
    with ProcessPoolExecutor(max_workers=HAMMER_PROCS) as pool:
        futures = [
            pool.submit(fn, root, worker_id, *extra)
            for worker_id in range(HAMMER_PROCS)
        ]
        return [f.result(timeout=300) for f in futures]


# ----------------------------------------------------------------------
# The hammers
# ----------------------------------------------------------------------
class TestArtifactCacheHammer:
    def test_eight_process_hammer_matches_serial_oracle(self, tmp_path):
        hammer_root = tmp_path / "hammer"
        oracle_root = tmp_path / "oracle"
        torn = _hammer(_cache_worker, str(hammer_root))
        assert sum(torn) == 0, f"torn reads observed: {torn}"
        _cache_worker(str(oracle_root), 0)  # the serial oracle
        got = _dir_bytes(hammer_root, "resp-*.json")
        want = _dir_bytes(oracle_root, "resp-*.json")
        # No lost writes, no extras, every payload bit-identical.
        assert got == want
        assert len(got) == KEYS
        # No temp-file or lock litter in the payload namespace.
        assert not list(hammer_root.glob("*.tmp*"))

    def test_every_surviving_payload_parses(self, tmp_path):
        _hammer(_cache_worker, str(tmp_path))
        for p in tmp_path.glob("resp-*.json"):
            json.loads(p.read_text(encoding="utf-8"))


class TestRunRegistryHammer:
    def test_eight_process_hammer_matches_serial_oracle(self, tmp_path):
        hammer_root = tmp_path / "hammer"
        oracle_root = tmp_path / "oracle"
        bad = _hammer(_registry_worker, str(hammer_root))
        assert sum(bad) == 0
        _registry_worker(str(oracle_root), 0)
        got = _dir_bytes(hammer_root, "*.json")
        want = _dir_bytes(oracle_root, "*.json")
        assert got == want
        assert len(got) == KEYS
        # Scans see exactly the serial outcome afterwards.
        records = RunRegistry(hammer_root).records(kind="experiment")
        assert len(records) == KEYS
        assert [r.run_id for r in records] == sorted(
            r.run_id for r in _registry_records()
        )


class TestConcurrentPruning:
    def test_cache_prune_under_write_load(self, tmp_path):
        budget = 10
        _hammer(_prune_worker, str(tmp_path), budget)
        # Quiescent state: one final prune lands exactly on the budget,
        # and everything that survived is a complete payload.
        cache = ArtifactCache(tmp_path)
        cache.prune(max_entries=budget)
        survivors = list(tmp_path.glob("resp-*.json"))
        assert len(survivors) == budget
        for p in survivors:
            json.loads(p.read_text(encoding="utf-8"))

    def test_registry_prune_under_write_load(self, tmp_path):
        keep = 5
        _hammer(_registry_prune_worker, str(tmp_path), keep)
        registry = RunRegistry(tmp_path)
        registry.prune(keep)
        assert len(list(tmp_path.glob("*.json"))) == keep
        for rec in registry.records():
            assert rec.run_id  # complete, parseable records only

    def test_prune_is_single_flight(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(6):
            cache.put_json("resp", f"n{i}", SimScale.TINY, f"{i:012x}",
                           json.dumps({"i": i}))
        lock = store_lock(tmp_path, "prune")
        assert lock.try_acquire()
        try:
            # A concurrent pruner holds the lock: this pass must skip.
            assert cache.prune(max_entries=1) == 0
            assert len(list(tmp_path.glob("resp-*.json"))) == 6
        finally:
            lock.release()
        assert cache.prune(max_entries=1) == 5


class TestTOCTOUTolerance:
    """Readers and pruners racing deleters must degrade, not raise."""

    def test_registry_scan_survives_concurrent_deletion(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for rec in _registry_records():
            registry.save(rec)
        paths = sorted(tmp_path.glob("*.json"))

        def deleter():
            for p in paths:
                try:
                    p.unlink()
                except FileNotFoundError:
                    pass
                time.sleep(0.001)

        thread = threading.Thread(target=deleter)
        thread.start()
        try:
            while list(tmp_path.glob("*.json")):
                for rec in registry.records():
                    assert rec.run_id  # whatever is seen is complete
        finally:
            thread.join()
        assert registry.records() == []

    def test_cache_prune_survives_concurrent_deletion(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(40):
            cache.put_json("resp", f"n{i}", SimScale.TINY, f"{i:012x}",
                           json.dumps({"i": i}))
        paths = sorted(tmp_path.glob("resp-*.json"))

        def deleter():
            for p in paths:
                try:
                    p.unlink()
                except FileNotFoundError:
                    pass

        thread = threading.Thread(target=deleter)
        thread.start()
        try:
            # Race the pruner against the deleter; tolerating vanished
            # candidates is the contract under test.
            for _ in range(20):
                cache.prune(max_entries=1)
        finally:
            thread.join()
        assert len(list(tmp_path.glob("resp-*.json"))) <= 1

    def test_recently_touched_entries_survive_prune(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        old = time.time() - 3600
        for i in range(4):
            path = cache.put_json("resp", f"n{i}", SimScale.TINY,
                                  f"{i:012x}", json.dumps({"i": i}))
            os.utime(path, (old + i, old + i))
        # A warm hit refreshes mtime, so the oldest entry becomes the
        # newest and must survive the next budget pass.
        assert cache.get_json("resp", "n0", SimScale.TINY,
                              f"{0:012x}") is not None
        cache.prune(max_entries=1)
        survivors = [p.name for p in tmp_path.glob("resp-*.json")]
        assert survivors == [f"resp-n0-tiny-{0:012x}.json"]


class TestFileLock:
    def test_mutual_exclusion_and_release(self, tmp_path):
        path = tmp_path / "x.lock"
        first, second = FileLock(path), FileLock(path)
        assert first.try_acquire()
        assert not second.try_acquire()
        first.release()
        assert second.try_acquire()
        second.release()

    def test_blocking_acquire_times_out(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            with pytest.raises(LockTimeout):
                FileLock(path, stale_after=3600).acquire(timeout=0.05)

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        FileLock(path).try_acquire()  # holder "dies" without releasing
        old = time.time() - 3600
        os.utime(path, (old, old))
        waiter = FileLock(path, stale_after=30.0)
        assert waiter.try_acquire()
        waiter.release()

    def test_store_lock_keeps_payload_namespace_clean(self, tmp_path):
        with store_lock(tmp_path, "w-ab"):
            assert not list(tmp_path.glob("*.lock"))
            assert (tmp_path / ".locks" / "w-ab.lock").is_file()

    def test_lock_parent_dir_created_on_demand(self, tmp_path):
        lock = store_lock(tmp_path / "fresh", "prune")
        assert lock.try_acquire()
        lock.release()
