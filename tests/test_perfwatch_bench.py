"""The benchmark-session recorder behind benchmarks/conftest.py.

Outcome tracking, peak-RSS sampling, the lock-protected JSON-array
append (including genuinely concurrent cross-process appends), and the
dual-write into the perfwatch history.
"""

import json
from concurrent.futures import ProcessPoolExecutor
from types import SimpleNamespace

from repro.perfwatch.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecorder,
    append_bench_record,
    dual_write_history,
    read_bench_history,
)
from repro.perfwatch.store import PerfHistory


def report(nodeid, when="call", outcome="passed", duration=1.0):
    return SimpleNamespace(
        nodeid=nodeid, when=when, duration=duration,
        passed=outcome == "passed",
        failed=outcome == "failed",
        skipped=outcome == "skipped",
    )


class TestBenchRecorder:
    def test_empty_until_observed(self):
        recorder = BenchRecorder(scale="small")
        assert recorder.empty
        recorder.observe(report("t::a"))
        assert not recorder.empty

    def test_passed_call_contributes_timing_and_rss(self):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::a", duration=1.23456))
        assert recorder.timings == {"t::a": 1.2346}
        assert recorder.outcomes == {"t::a": "passed"}
        assert recorder.rss_kb["t::a"] > 0

    def test_failed_and_skipped_counted_but_not_timed(self):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::bad", outcome="failed"))
        recorder.observe(report("t::skip", when="setup",
                                outcome="skipped"))
        assert recorder.timings == {}
        assert recorder.outcomes == {"t::bad": "failed",
                                     "t::skip": "skipped"}

    def test_outcome_precedence_is_worst_wins(self):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::a", when="setup"))
        recorder.observe(report("t::a"))
        recorder.observe(report("t::a", when="teardown",
                                outcome="failed"))
        assert recorder.outcomes == {"t::a": "failed"}
        # a timing was recorded at call time, but the verdict stands
        assert "t::a" in recorder.timings

    def test_record_schema(self):
        recorder = BenchRecorder(scale="medium")
        recorder.observe(report("t::b", duration=2.0))
        recorder.observe(report("t::a", duration=1.0))
        rec = recorder.record(
            {"git": "abc", "host": "ci", "config": "cafe0123"}
        )
        assert rec["schema"] == BENCH_SCHEMA_VERSION
        assert rec["scale"] == "medium"
        assert rec["git"] == "abc" and rec["config"] == "cafe0123"
        assert rec["total_s"] == 3.0
        assert list(rec["tests"]) == ["t::a", "t::b"]  # sorted
        assert set(rec["rss_kb"]) == {"t::a", "t::b"}
        assert rec["timestamp"]

    def test_rss_is_monotone_within_a_session(self):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::a"))
        ballast = bytearray(8 << 20)  # grow the high-water mark
        recorder.observe(report("t::b"))
        del ballast
        assert recorder.rss_kb["t::b"] >= recorder.rss_kb["t::a"]


class TestAppend:
    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "BENCH.json"
        first = append_bench_record(path, {"total_s": 1.0})
        assert len(first) == 1
        second = append_bench_record(path, {"total_s": 2.0})
        assert [r["total_s"] for r in second] == [1.0, 2.0]
        assert read_bench_history(path) == second
        assert not path.with_name("BENCH.json.lock").exists()

    def test_corrupt_file_resets_instead_of_crashing(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json")
        history = append_bench_record(path, {"total_s": 1.0})
        assert [r["total_s"] for r in history] == [1.0]

    def test_read_missing_is_empty(self, tmp_path):
        assert read_bench_history(tmp_path / "nope.json") == []


def _hammer(path, worker, n):
    for i in range(n):
        append_bench_record(path, {"worker": worker, "seq": i})
    return worker


class TestConcurrentAppend:
    def test_parallel_sessions_all_land(self, tmp_path):
        path = tmp_path / "BENCH.json"
        procs, per = 6, 2
        with ProcessPoolExecutor(max_workers=procs) as pool:
            futures = [pool.submit(_hammer, path, w, per)
                       for w in range(procs)]
            assert sorted(f.result() for f in futures) == list(
                range(procs)
            )
        history = json.loads(path.read_text())
        assert len(history) == procs * per
        seen = {(r["worker"], r["seq"]) for r in history}
        assert seen == {(w, i) for w in range(procs)
                        for i in range(per)}


class TestDualWrite:
    def test_bench_session_lands_in_history(self, tmp_path):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::a", duration=1.5))
        rec = recorder.record({"git": "abc", "host": "h",
                               "config": "c0ffee00"})
        history_path = tmp_path / "perf-history.jsonl"
        assert dual_write_history(history_path, rec,
                                  tags={"git": "abc", "host": "h",
                                        "config": "c0ffee00"})
        [session] = PerfHistory(history_path).sessions()
        assert session.source == "bench"
        assert session.metrics["bench/t::a"] == 1.5
        assert session.metrics["bench/total_s"] == 1.5
        assert session.metrics["benchrss/t::a"] > 0
        assert session.git == "abc" and session.scale == "small"

    def test_dual_write_is_idempotent(self, tmp_path):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::a"))
        rec = recorder.record()
        history_path = tmp_path / "h.jsonl"
        tags = {"git": "g", "host": "h", "config": "cfg"}
        assert dual_write_history(history_path, rec, tags)
        assert not dual_write_history(history_path, rec, tags)
        assert len(PerfHistory(history_path).sessions()) == 1

    def test_failed_tests_ride_in_meta_not_metrics(self, tmp_path):
        recorder = BenchRecorder(scale="small")
        recorder.observe(report("t::ok", duration=1.0))
        recorder.observe(report("t::bad", outcome="failed"))
        recorder.observe(report("t::skip", when="setup",
                                outcome="skipped"))
        rec = recorder.record()
        history_path = tmp_path / "h.jsonl"
        assert dual_write_history(history_path, rec, tags={})
        [session] = PerfHistory(history_path).sessions()
        timed = [m for m in session.metrics
                 if m.startswith("bench/") and m != "bench/total_s"]
        assert timed == ["bench/t::ok"]
        assert session.meta == {"skipped": 1, "failed": 1}
