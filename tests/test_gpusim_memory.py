"""Tests for the GPU memory model: coalescing, banks, caches, allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.isa import Space
from repro.gpusim.memory import (
    Allocator,
    CacheModel,
    DeviceArray,
    bank_conflict_degree,
    coalesce,
)


class TestCoalesce:
    def test_contiguous_floats_one_segment(self):
        addrs = np.arange(16) * 4 + 256
        assert coalesce(addrs).size == 1

    def test_strided_hits_every_segment(self):
        addrs = np.arange(32) * 64
        assert coalesce(addrs).size == 32

    def test_duplicates_merge(self):
        addrs = np.array([0, 0, 0, 4])
        assert coalesce(addrs).size == 1

    def test_empty(self):
        assert coalesce(np.empty(0, dtype=np.int64)).size == 0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=64))
    def test_matches_set_of_segments(self, raw):
        addrs = np.array(raw, dtype=np.int64)
        expected = sorted({a // 64 * 64 for a in raw})
        np.testing.assert_array_equal(coalesce(addrs), expected)


class TestBankConflicts:
    def test_conflict_free_unit_stride(self):
        addrs = np.arange(32) * 4
        assert bank_conflict_degree(addrs) == 1

    def test_broadcast_is_free(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert bank_conflict_degree(addrs) == 1

    def test_stride_two_gives_two_way(self):
        addrs = np.arange(32) * 8  # even banks only
        assert bank_conflict_degree(addrs) == 2

    def test_same_bank_full_serialization(self):
        addrs = np.arange(32) * 4 * 32  # all in bank 0
        assert bank_conflict_degree(addrs) == 32

    def test_empty_is_zero(self):
        assert bank_conflict_degree(np.empty(0, dtype=np.int64)) == 0


def _reference_lru(accesses, size, assoc, line):
    """Brute-force set-associative LRU."""
    n_sets = max(1, (size // line) // assoc)
    sets = {}
    hits = []
    for addr in accesses:
        ln = addr // line
        s = ln % n_sets
        ways = sets.setdefault(s, [])
        if ln in ways:
            ways.remove(ln)
            ways.append(ln)
            hits.append(True)
        else:
            ways.append(ln)
            if len(ways) > assoc:
                ways.pop(0)
            hits.append(False)
    return hits


class TestCacheModel:
    def test_repeat_hits(self):
        c = CacheModel(1024, assoc=2)
        assert not c.access_one(0)
        assert c.access_one(0)
        assert c.hit_rate == 0.5

    def test_eviction_order_is_lru(self):
        c = CacheModel(2 * 64, assoc=2, line_bytes=64)  # one set, 2 ways
        c.access_one(0)
        c.access_one(64 * 1)  # with 1 set: same set
        c.access_one(0)       # touch 0 -> MRU
        c.access_one(64 * 2)  # evicts line 1
        assert c.access_one(0)
        assert not c.access_one(64 * 1)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 4095), min_size=1, max_size=300),
        st.sampled_from([256, 512, 2048]),
        st.sampled_from([1, 2, 4]),
    )
    def test_matches_reference(self, raw, size, assoc):
        c = CacheModel(size, assoc=assoc, line_bytes=64)
        got = c.access(np.array(raw, dtype=np.int64))
        expected = _reference_lru(raw, size, assoc, 64)
        assert got.tolist() == expected

    def test_hash_sets_avoid_stride_aliasing(self):
        # Power-of-two stride pathological for modulo indexing.
        stride = 64 * 256
        addrs = np.tile(np.arange(16) * stride, 50)
        plain = CacheModel(64 * 1024, assoc=4, line_bytes=64)
        hashed = CacheModel(64 * 1024, assoc=4, line_bytes=64, hash_sets=True)
        plain.access(addrs)
        hashed.access(addrs)
        assert hashed.hit_rate > plain.hit_rate

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CacheModel(0)

    def test_clone_empty_preserves_geometry(self):
        c = CacheModel(2048, assoc=8, line_bytes=32, hash_sets=True)
        d = c.clone_empty()
        assert (d.size_bytes, d.assoc, d.line_bytes, d.hash_sets) == (
            2048, 8, 32, True)
        assert d.accesses == 0


class TestAllocator:
    def test_spaces_disjoint(self):
        a = Allocator()
        g = a.alloc(100, Space.GLOBAL)
        s = a.alloc(100, Space.SHARED)
        assert g != s

    def test_sequential_no_overlap(self):
        a = Allocator()
        b1 = a.alloc(100, Space.GLOBAL)
        b2 = a.alloc(100, Space.GLOBAL)
        assert b2 >= b1 + 100

    def test_reset_reuses(self):
        a = Allocator()
        b1 = a.alloc(64, Space.SHARED)
        a.reset(Space.SHARED)
        b2 = a.alloc(64, Space.SHARED)
        assert b1 == b2


class TestDeviceArray:
    def test_to_host_copies(self):
        arr = DeviceArray(np.zeros(4), 0x1000, Space.GLOBAL)
        h = arr.to_host()
        h[0] = 7
        assert arr.data[0] == 0

    def test_properties(self):
        arr = DeviceArray(np.zeros((2, 3), dtype=np.float32), 0x40, Space.TEX)
        assert arr.itemsize == 4
        assert arr.size == 6
        assert arr.nbytes == 24
        assert arr.shape == (2, 3)


class TestWarmBatchCache:
    """CacheModel.access may switch between the scalar loop and the
    batch way-matrix engine mid-stream; the warm state handoff in both
    directions must be exact."""

    @pytest.mark.parametrize("hash_sets", [False, True])
    def test_scalar_batch_scalar_equals_pure_scalar(self, hash_sets):
        rng = np.random.default_rng(7)
        warm = rng.integers(0, 4096, size=3000) * 64
        big = rng.integers(0, 4096, size=20000) * 64
        tail = rng.integers(0, 4096, size=500) * 64

        mixed = CacheModel(16 * 1024, assoc=4, hash_sets=hash_sets)
        oracle = CacheModel(16 * 1024, assoc=4, hash_sets=hash_sets)

        got = [mixed.access(part) for part in (warm, big, tail)]
        want = [
            np.array([oracle.access_one(int(a)) for a in part])
            for part in (warm, big, tail)
        ]
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)
        assert (mixed.hits, mixed.misses) == (oracle.hits, oracle.misses)
        # Post-state must also agree: identical per-set LRU lists.
        assert mixed._sets == oracle._sets

    def test_batch_on_cold_cache_unchanged(self):
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 2048, size=8192) * 64
        cold = CacheModel(16 * 1024, assoc=4)
        ref = CacheModel(16 * 1024, assoc=4)
        got = cold.access(addrs)
        want = np.array([ref.access_one(int(a)) for a in addrs])
        np.testing.assert_array_equal(got, want)
        assert cold._sets == ref._sets
