"""Tests for repro.common: RNG discipline, tables, scaling."""

import numpy as np
import pytest

from repro.common.config import SimScale, scaled
from repro.common.rng import make_rng
from repro.common.tables import Table


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng("x", 1).integers(0, 1000, 10)
        b = make_rng("x", 1).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        a = make_rng("x", 1).integers(0, 1000, 10)
        b = make_rng("x", 2).integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_tag_types(self):
        # Tags of any type are accepted and stable.
        a = make_rng("w", 3, 4.5, True).random()
        b = make_rng("w", 3, 4.5, True).random()
        assert a == b


class TestSimScale:
    def test_factors_monotone(self):
        assert SimScale.TINY.factor < SimScale.SMALL.factor < SimScale.MEDIUM.factor

    def test_scaled_minimum(self):
        assert scaled(0, SimScale.TINY, minimum=3) == 3

    def test_scaled_grows(self):
        assert scaled(16, SimScale.MEDIUM) == 64


class TestTable:
    def test_render_contains_cells(self):
        t = Table("My Title", ["a", "b"])
        t.add_row(["hello", 1.5])
        out = t.render()
        assert "My Title" in out
        assert "hello" in out
        assert "1.5" in out

    def test_row_width_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_column_extraction(self):
        t = Table("T", ["a", "b"])
        t.add_row([1, 2])
        t.add_row([3, 4])
        assert t.column("b") == ["2", "4"]

    def test_float_formatting(self):
        t = Table("T", ["x"])
        t.add_row([1234567.0])
        t.add_row([0.000001])
        t.add_row([0])
        out = t.render()
        assert "e+06" in out and "e-06" in out
