"""Tests for application-space coverage and redundancy metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import (
    bounding_volume,
    coverage_report,
    greedy_representative_subset,
    marginal_coverage,
    nearest_neighbor_distances,
)


class TestBoundingVolume:
    def test_unit_square(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert bounding_volume(pts) == pytest.approx(1.0)

    def test_interior_points_do_not_grow(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        assert bounding_volume(pts) == pytest.approx(1.0)

    def test_single_point(self):
        assert bounding_volume(np.array([[1.0, 2.0]])) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_monotone_under_addition(self, seed):
        rng = np.random.default_rng(seed)
        base = rng.normal(0, 1, (6, 3))
        extra = rng.normal(0, 2, (3, 3))
        assert (bounding_volume(np.vstack([base, extra]))
                >= bounding_volume(base) - 1e-12)


class TestNearestNeighbor:
    def test_distances(self):
        pts = np.array([[0.0], [1.0], [5.0]])
        nn = nearest_neighbor_distances(pts)
        np.testing.assert_allclose(nn, [1.0, 1.0, 4.0])


class TestCoverageReport:
    def test_redundant_pair_flagged(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        rep = coverage_report(pts, ["a", "b", "c"], redundancy_threshold=0.5)
        assert rep.redundant_pairs == [("a", "b", pytest.approx(0.1))]

    def test_no_redundancy_when_spread(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]])
        rep = coverage_report(pts, list("abc"))
        assert rep.redundant_pairs == []
        assert rep.min_nn_distance == pytest.approx(3.0)


class TestMarginalCoverage:
    def test_interior_addition_adds_nothing(self):
        base = np.array([[0.0, 0.0], [2.0, 2.0]])
        added = np.array([[1.0, 1.0]])
        assert marginal_coverage(base, added) == pytest.approx(0.0)

    def test_exterior_addition_grows(self):
        base = np.array([[0.0, 0.0], [1.0, 1.0]])
        added = np.array([[2.0, 2.0]])
        assert marginal_coverage(base, added) == pytest.approx(3.0)


class TestGreedySubset:
    def test_extremes_always_kept(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0], [5.0, 5.0], [5.1, 5.0]])
        subset = greedy_representative_subset(pts, list("abcd"), 0.9)
        assert "a" in subset and "b" in subset

    def test_subset_meets_target(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(0, 1, (20, 4))
        names = [f"w{i}" for i in range(20)]
        subset = greedy_representative_subset(pts, names, 0.9)
        idx = [names.index(n) for n in subset]
        assert (bounding_volume(pts[idx])
                >= 0.9 * bounding_volume(pts) - 1e-9)

    def test_subset_smaller_than_suite_for_clustered_data(self):
        rng = np.random.default_rng(5)
        pts = np.vstack([rng.normal(0, 0.01, (10, 3)),
                         rng.normal(5, 0.01, (10, 3))])
        subset = greedy_representative_subset(
            pts, [f"w{i}" for i in range(20)], 0.9)
        assert len(subset) < 20

    def test_tiny_input(self):
        pts = np.array([[0.0], [1.0]])
        assert greedy_representative_subset(pts, ["a", "b"]) == ["a", "b"]
