"""Tests for the analytic timing model and GPU configurations."""

import numpy as np
import pytest

from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.gpusim.trace import KernelTrace, LaunchTrace


def _compute_trace(n_blocks=64, insts=2000, block=256):
    """Synthetic trace: pure ALU, full warps, no memory."""
    tr = KernelTrace("synthetic")
    lt = tr.new_launch("k", (n_blocks, 1), (block, 1), 16)
    warps = block // 32
    lt.charge_warps(
        __import__("repro.gpusim.isa", fromlist=["Category"]).Category.ALU,
        np.full(warps, 32, dtype=np.int64),
        repeat=insts * n_blocks,
    )
    return tr


def _memory_trace(n_tx=20000, n_blocks=64, block=256):
    """Synthetic trace: one ALU inst plus a pile of DRAM transactions."""
    from repro.gpusim.isa import Category

    tr = KernelTrace("memory")
    lt = tr.new_launch("k", (n_blocks, 1), (block, 1), 16)
    lt.charge_warps(Category.ALU, np.full(block // 32, 32, dtype=np.int64))
    addrs = (np.arange(n_tx, dtype=np.int64) * 64) + 0x1000_0000
    lt.record_transactions(addrs, 0, False)
    lt.charge_mem_space(
        __import__("repro.gpusim.isa", fromlist=["Space"]).Space.GLOBAL, 1
    )
    return tr


class TestOccupancy:
    def _launch(self, block=256, shared=0, regs=16):
        tr = KernelTrace("t")
        lt = tr.new_launch("k", (64, 1), (block, 1), regs)
        lt.shared_bytes_per_block = shared
        return lt

    def test_thread_limited(self):
        model = TimingModel(GPUConfig.sim_default())
        occ = model.occupancy(self._launch(block=512))
        assert occ["ctas_per_sm"] == 2  # 1024 threads / 512

    def test_shared_limited(self):
        model = TimingModel(GPUConfig.sim_default())
        occ = model.occupancy(self._launch(block=64, shared=12 * 1024))
        assert occ["ctas_per_sm"] == 2  # 32 kB / 12 kB

    def test_reg_limited(self):
        model = TimingModel(GPUConfig.sim_default())
        occ = model.occupancy(self._launch(block=256, regs=32))
        assert occ["ctas_per_sm"] == 2  # 16384 / (32*256)

    def test_cta_cap(self):
        model = TimingModel(GPUConfig.sim_default())
        occ = model.occupancy(self._launch(block=32))
        assert occ["ctas_per_sm"] == 8

    def test_oversized_shared_degrades_to_one(self):
        model = TimingModel(GPUConfig.sim_default())
        occ = model.occupancy(self._launch(block=64, shared=48 * 1024))
        assert occ["ctas_per_sm"] == 1


class TestBottlenecks:
    def test_compute_trace_is_issue_bound(self):
        res = TimingModel(GPUConfig.sim_default()).time(_compute_trace())
        assert res.bound_mix()["issue"] == 1.0

    def test_memory_trace_is_bandwidth_bound(self):
        res = TimingModel(GPUConfig.sim_default()).time(_memory_trace())
        assert res.bound_mix()["bandwidth"] == 1.0

    def test_compute_scales_with_sms(self):
        tr = _compute_trace()
        c28 = TimingModel(GPUConfig.sim_default()).time(tr)
        c8 = TimingModel(GPUConfig.sim_8sm()).time(tr)
        assert c28.ipc / c8.ipc > 2.5

    def test_memory_insensitive_to_sms(self):
        tr = _memory_trace()
        c28 = TimingModel(GPUConfig.sim_default()).time(tr)
        c8 = TimingModel(GPUConfig.sim_8sm()).time(tr)
        assert c28.cycles == pytest.approx(c8.cycles, rel=0.05)

    def test_memory_scales_with_channels(self):
        tr = _memory_trace()
        base = TimingModel(GPUConfig.sim_default().replace(n_mem_channels=4)).time(tr)
        more = TimingModel(GPUConfig.sim_default().replace(n_mem_channels=8)).time(tr)
        assert base.cycles / more.cycles > 1.7

    def test_simd_width_doubles_issue_cost(self):
        tr = _compute_trace()
        wide = TimingModel(GPUConfig.sim_default()).time(tr)
        narrow = TimingModel(GPUConfig.sim_default().replace(simd_width=16)).time(tr)
        assert narrow.cycles > wide.cycles * 1.8

    def test_bank_conflicts_toggle(self):
        from repro.gpusim.isa import Category

        tr = KernelTrace("bc")
        lt = tr.new_launch("k", (64, 1), (256, 1), 16)
        lt.charge_warps(Category.ALU, np.full(8, 32, dtype=np.int64), repeat=100)
        lt.shared_replays = 1_000_000
        on = TimingModel(GPUConfig.sim_default()).time(tr)
        off = TimingModel(
            GPUConfig.sim_default().replace(model_bank_conflicts=False)
        ).time(tr)
        assert on.cycles > off.cycles * 2

    def test_low_occupancy_issue_stall(self):
        small = _compute_trace(n_blocks=1, block=32)   # 1 warp resident
        big = _compute_trace(n_blocks=1, block=1024)   # 32 warps resident
        m = TimingModel(GPUConfig.sim_default())
        t_small = m.time(small)
        t_big = m.time(big)
        # Equal issue slots per SM would predict equal cycles; the
        # under-occupied launch must be slower per instruction.
        per_slot_small = t_small.cycles / small.issued_warp_insts
        per_slot_big = t_big.cycles / big.issued_warp_insts
        assert per_slot_small > per_slot_big


class TestFermiCaches:
    def test_l1_reduces_dram_traffic(self):
        from repro.gpusim.isa import Category, Space

        tr = KernelTrace("hotloop")
        lt = tr.new_launch("k", (8, 1), (256, 1), 16)
        lt.charge_warps(Category.ALU, np.full(8, 32, dtype=np.int64))
        lt.charge_mem_space(Space.GLOBAL, 1)
        # Small working set re-read many times.
        addrs = np.tile(np.arange(64, dtype=np.int64) * 64, 200)
        lt.record_transactions(addrs, 0, False)
        nocache = TimingModel(GPUConfig.gtx280()).time(tr)
        cached = TimingModel(GPUConfig.gtx480_l1_bias()).time(tr)
        assert cached.dram_bytes < nocache.dram_bytes / 10

    def test_l1_bias_beats_shared_bias_for_reuse(self):
        from repro.gpusim.isa import Category, Space

        tr = KernelTrace("midset")
        lt = tr.new_launch("k", (1, 1), (256, 1), 16)
        lt.charge_warps(Category.ALU, np.full(8, 32, dtype=np.int64))
        lt.charge_mem_space(Space.GLOBAL, 1)
        # ~32 kB working set: fits 48 kB L1, thrashes 16 kB L1.
        addrs = np.tile(np.arange(512, dtype=np.int64) * 64, 100)
        lt.record_transactions(addrs, 0, False)
        shared_bias = TimingModel(GPUConfig.gtx480_shared_bias()).time(tr)
        l1_bias = TimingModel(GPUConfig.gtx480_l1_bias()).time(tr)
        # The unified L2 absorbs the re-reads either way (equal DRAM
        # traffic); the win comes from L1-latency hits.
        assert l1_bias.dram_bytes == shared_bias.dram_bytes
        assert l1_bias.cycles < shared_bias.cycles / 1.5


class TestConfigs:
    def test_presets_complete(self):
        presets = GPUConfig.presets()
        assert {"sim-default", "sim-8sm", "gtx280", "gtx480-shared-bias",
                "gtx480-l1-bias"} <= set(presets)

    def test_peak_bandwidth(self):
        cfg = GPUConfig(n_mem_channels=8, bus_width_bytes=16, mem_clock_ghz=1.0)
        assert cfg.peak_bandwidth_gbs == pytest.approx(256.0)

    def test_fermi_split_is_64kb(self):
        for cfg in (GPUConfig.gtx480_shared_bias(), GPUConfig.gtx480_l1_bias()):
            assert cfg.shared_mem_per_sm + cfg.l1_size == 64 * 1024

    def test_replace_is_functional(self):
        a = GPUConfig.sim_default()
        b = a.replace(n_sms=4)
        assert a.n_sms == 28 and b.n_sms == 4

    def test_bw_utilization_bounded(self):
        res = TimingModel(GPUConfig.sim_default()).time(_memory_trace())
        assert 0.0 < res.bw_utilization <= 1.01
