"""Tests for the OpenCL-flavored front end."""

import numpy as np
import pytest

from repro.gpusim import GPU, GPUConfig
from repro.gpusim.opencl import CLDevice


class TestNDRange:
    def test_vector_add_1d(self):
        dev = CLDevice()
        n = 1024
        a = dev.buffer(np.arange(n, dtype=np.float32))
        out = dev.buffer_like(a)

        def vadd(cl, a, out):
            gid = cl.get_global_id(0)
            with cl.mask(gid < n):
                cl.compute(1)
                cl.write(out, gid, cl.read(a, gid) + 1)

        dev.enqueue_nd_range(vadd, global_size=n, local_size=128,
                             args=(a, out))
        np.testing.assert_allclose(dev.read_buffer(out), np.arange(n) + 1)

    def test_2d_ndrange(self):
        dev = CLDevice()
        out = dev.alloc((8, 8), dtype=np.int64)

        def k(cl, out):
            gx = cl.get_global_id(0)
            gy = cl.get_global_id(1)
            cl.write(out, gy * 8 + gx, gy * 10 + gx)

        dev.enqueue_nd_range(k, global_size=(8, 8), local_size=(4, 4),
                             args=(out,))
        expect = np.arange(8)[:, None] * 10 + np.arange(8)[None, :]
        np.testing.assert_array_equal(dev.read_buffer(out), expect)

    def test_global_must_divide_local(self):
        dev = CLDevice()
        with pytest.raises(ValueError):
            dev.enqueue_nd_range(lambda cl: None, global_size=100,
                                 local_size=64)

    def test_rank_mismatch(self):
        dev = CLDevice()
        with pytest.raises(ValueError):
            dev.enqueue_nd_range(lambda cl: None, global_size=(8, 8),
                                 local_size=4)

    def test_local_memory_and_barrier(self):
        dev = CLDevice()
        out = dev.alloc(4, dtype=np.float64)

        def block_sum(cl, out):
            lmem = cl.local_array(cl.get_local_size(0), dtype=np.float64)
            lid = cl.get_local_id(0)
            cl.write(lmem, lid, cl.get_global_id(0).astype(np.float64))
            cl.barrier()
            with cl.mask(lid == 0):
                total = lmem.data.sum()
                cl.write(out, np.full_like(lid, cl.get_group_id(0)), total)

        dev.enqueue_nd_range(block_sum, global_size=128, local_size=32,
                             args=(out,))
        expect = [np.arange(g * 32, (g + 1) * 32).sum() for g in range(4)]
        np.testing.assert_allclose(dev.read_buffer(out), expect)


class TestTraceEquivalence:
    """OpenCL-style kernels must produce identical traces to CUDA-style."""

    def _cuda_run(self):
        gpu = GPU()
        n = 512
        a = gpu.to_device(np.arange(n, dtype=np.float32))
        out = gpu.alloc(n)

        def k(ctx, a, out):
            i = ctx.gtid
            with ctx.masked(i < n):
                ctx.alu(2)
                ctx.store(out, i, ctx.load(a, i) * 3)

        gpu.launch(k, n // 64, 64, a, out)
        return gpu.trace

    def _cl_run(self):
        dev = CLDevice()
        n = 512
        a = dev.buffer(np.arange(n, dtype=np.float32))
        out = dev.buffer_like(a)

        def k(cl, a, out):
            gid = cl.get_global_id(0)
            with cl.mask(gid < n):
                cl.compute(2)
                cl.write(out, gid, cl.read(a, gid) * 3)

        dev.enqueue_nd_range(k, n, 64, args=(a, out))
        return dev.trace

    def test_identical_statistics(self):
        cuda = self._cuda_run()
        cl = self._cl_run()
        assert cuda.thread_insts == cl.thread_insts
        assert cuda.issued_warp_insts == cl.issued_warp_insts
        assert cuda.mem_mix() == cl.mem_mix()
        np.testing.assert_array_equal(cuda.occupancy_hist, cl.occupancy_hist)

    def test_memory_object_kinds(self):
        dev = CLDevice()
        img = dev.image(np.zeros(64, dtype=np.float32))
        cst = dev.constant(np.zeros(16, dtype=np.float32))

        def k(cl, img, cst):
            gid = cl.get_global_id(0)
            cl.read(img, gid)
            cl.read(cst, 0)

        dev.enqueue_nd_range(k, 64, 64, args=(img, cst))
        mix = dev.trace.mem_mix()
        assert mix["tex"] == pytest.approx(0.5)
        assert mix["const"] == pytest.approx(0.5)

    def test_finish_resets(self):
        dev = CLDevice()
        out = dev.alloc(32)
        dev.enqueue_nd_range(
            lambda cl, o: cl.write(o, cl.get_global_id(0), 1.0),
            32, 32, args=(out,))
        first = dev.finish()
        assert first.n_launches == 1
        assert dev.trace.n_launches == 0
