"""Fidelity layer: run registry, golden drift gate, runner integration.

Pins the contracts ISSUE 4 introduces: records are content-keyed and
round-trip; the drift checker classifies pass/warn/fail/missing/new
correctly and names offenders; the paper goldens match a fresh run
exactly (the simulators are deterministic); and the runner CLI gates a
SMALL-scale experiment end-to-end through registry + drift with the
right exit codes.
"""

import json

import pytest

from repro import telemetry
from repro.common.config import SimScale, config
from repro.fidelity import (
    DriftReport,
    RunRecord,
    RunRegistry,
    Tolerance,
    check_drift,
    flatten_metrics,
    golden_scales,
    paper_goldens,
    record_from_results,
    tolerance_for,
)
from repro.fidelity.goldens import GOLDEN_EXPERIMENTS


# ----------------------------------------------------------------------
# Metric flattening
# ----------------------------------------------------------------------
class TestFlatten:
    def test_nested_numeric_leaves(self):
        data = {
            "backprop": {"ipc8": 1.5, "ipc28": 3, "bound": "bandwidth"},
            "curve": [1, 2.5],
            "note": "text",
        }
        assert flatten_metrics("fig1", data) == {
            "fig1/backprop/ipc8": 1.5,
            "fig1/backprop/ipc28": 3.0,
            "fig1/curve/0": 1.0,
            "fig1/curve/1": 2.5,
        }

    def test_booleans_and_strings_skipped(self):
        assert flatten_metrics("x", {"flag": True, "s": "y"}) == {}

    def test_scalar_root(self):
        assert flatten_metrics("x", 2) == {"x": 2.0}


# ----------------------------------------------------------------------
# RunRecord / RunRegistry
# ----------------------------------------------------------------------
def _record(**overrides):
    base = dict(
        kind="run", scale="tiny", experiments=["fig1"],
        metrics={"fig1/a/ipc8": 1.0}, counters={"c": 2},
        span_stats={"experiment": [1, 0.5]}, durations={"fig1": 0.5},
        meta={"argv": ["fig1"]},
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRegistry:
    def test_content_key_ignores_provenance(self):
        a = _record().stamp()
        b = _record(counters={}, durations={}, meta={}).stamp()
        assert a.run_id == b.run_id  # timing/provenance excluded
        c = _record(metrics={"fig1/a/ipc8": 2.0}).stamp()
        assert c.run_id != a.run_id  # metrics included

    def test_save_load_roundtrip(self, tmp_path):
        reg = RunRegistry(tmp_path / "reg")
        path = reg.save(_record())
        assert path.name.startswith("run-")
        loaded = reg.load(path)
        assert loaded == reg.load(loaded.run_id)  # by path and by id
        assert loaded.metrics == {"fig1/a/ipc8": 1.0}
        assert loaded.span_stats == {"experiment": [1, 0.5]}
        assert loaded.timestamp

    def test_identical_rerun_dedupes(self, tmp_path):
        reg = RunRegistry(tmp_path)
        reg.save(_record())
        reg.save(_record())
        assert len(reg.records()) == 1
        reg.save(_record(metrics={"fig1/a/ipc8": 9.0}))
        assert len(reg.records()) == 2

    def test_kind_filter_and_latest(self, tmp_path):
        reg = RunRegistry(tmp_path)
        reg.save(_record(timestamp="2026-01-01T00:00:00"))
        reg.save(_record(kind="experiment", metrics={"fig1/a/ipc8": 7.0},
                         timestamp="2026-01-02T00:00:00"))
        assert [r.kind for r in reg.records("experiment")] == ["experiment"]
        assert reg.latest().timestamp == "2026-01-02T00:00:00"
        assert reg.latest("run").kind == "run"

    def test_empty_registry(self, tmp_path):
        reg = RunRegistry(tmp_path / "nonexistent")
        assert reg.records() == []
        assert reg.latest() is None
        with pytest.raises(FileNotFoundError):
            reg.load("deadbeef")

    def test_version_refusal(self, tmp_path):
        body = json.loads(_record().stamp().to_json())
        body["v"] = 99
        path = tmp_path / "run-x.json"
        path.write_text(json.dumps(body))
        with pytest.raises(ValueError, match="version"):
            RunRegistry(tmp_path).load(path)

    def test_record_from_results(self):
        from repro.experiments import ExperimentResult

        result = ExperimentResult(
            "fig1", [], {"bp": {"ipc8": 5.0}},
            metadata={"duration_s": 1.25},
        )
        rec = record_from_results([result], "small", counters={"k": 1})
        assert rec.metrics == {"fig1/bp/ipc8": 5.0}
        assert rec.durations == {"fig1": 1.25}
        assert rec.experiments == ["fig1"]
        assert rec.run_id and rec.timestamp


# ----------------------------------------------------------------------
# Drift checker
# ----------------------------------------------------------------------
class TestDrift:
    def test_statuses(self):
        baseline = {"fig1/a/ipc8": 100.0, "fig1/b/ipc8": 100.0,
                    "fig1/c/ipc8": 100.0, "fig1/d/ipc8": 100.0}
        metrics = {
            "fig1/a/ipc8": 100.0,        # pass (exact)
            "fig1/b/ipc8": 107.0,        # warn (5% < 7% <= 10%)
            "fig1/c/ipc8": 150.0,        # fail (50%)
            # fig1/d missing -> fail
            "fig1/e/ipc8": 1.0,          # new
        }
        report = check_drift(metrics, baseline, "b", "tiny")
        by = {e.metric: e.status for e in report.entries}
        assert by == {
            "fig1/a/ipc8": "pass", "fig1/b/ipc8": "warn",
            "fig1/c/ipc8": "fail", "fig1/d/ipc8": "missing",
            "fig1/e/ipc8": "new",
        }
        assert (report.n_pass, report.n_warn, report.n_fail,
                report.n_new) == (1, 1, 2, 1)
        assert not report.ok and report.exit_code == 1
        assert {e.metric for e in report.failures} == {
            "fig1/c/ipc8", "fig1/d/ipc8"
        }

    def test_all_pass_exit_zero(self):
        report = check_drift({"fig1/a/ipc8": 1.0}, {"fig1/a/ipc8": 1.0})
        assert report.ok and report.exit_code == 0
        assert "PASS" in report.summary_line()

    def test_uncovered_experiments_skipped_not_failed(self):
        baseline = {"fig1/a/ipc8": 1.0}
        metrics = {"fig3/a/mean": 9.0}  # baseline knows nothing of fig3
        report = check_drift(metrics, baseline)
        assert report.entries == []
        assert report.skipped == ["fig3"]
        assert report.ok

    def test_abs_floor_protects_near_zero(self):
        # An empty occupancy bucket moving by 1e-3 is within the floor.
        report = check_drift({"fig3/a/1-8": 0.001}, {"fig3/a/1-8": 0.0})
        assert report.entries[0].status == "pass"

    def test_tolerance_rules(self):
        assert tolerance_for("fig1/a/ipc8").abs_floor == 0.5
        assert tolerance_for("fig10/a").abs_floor == pytest.approx(5e-4)
        assert tolerance_for("unknown/x") == Tolerance()

    def test_worst_orders_by_budget_ratio(self):
        baseline = {"fig1/a/ipc8": 100.0, "fig1/b/ipc8": 100.0}
        report = check_drift(
            {"fig1/a/ipc8": 103.0, "fig1/b/ipc8": 130.0}, baseline
        )
        assert [e.metric for e in report.worst(2)] == [
            "fig1/b/ipc8", "fig1/a/ipc8"
        ]

    def test_table_and_render(self):
        report = check_drift({"fig1/a/ipc8": 150.0}, {"fig1/a/ipc8": 100.0})
        text = report.to_table().render()
        assert "fig1/a/ipc8" in text and "fail" in text
        from repro.core.report import render_drift

        rendered = render_drift(report)
        assert "FAIL" in rendered and "fig1/a/ipc8" in rendered


# ----------------------------------------------------------------------
# Goldens
# ----------------------------------------------------------------------
class TestGoldens:
    def test_scales_pinned(self):
        assert set(golden_scales()) == {"tiny", "small"}
        with pytest.raises(ValueError, match="medium"):
            paper_goldens(SimScale.MEDIUM)

    def test_golden_metrics_cover_expected_families(self):
        goldens = paper_goldens("small")
        prefixes = {m.split("/", 1)[0] for m in goldens}
        assert prefixes == set(GOLDEN_EXPERIMENTS)
        assert any(m.endswith("/ipc28") for m in goldens)      # fig1
        assert any("/25-32" in m for m in goldens)             # fig3 buckets
        assert any(m.startswith("fig10/") for m in goldens)    # miss rates

    def test_tiny_fig3_matches_goldens_exactly(self):
        """The simulators are deterministic: a fresh run IS the golden."""
        from repro.experiments import run_experiment

        result = run_experiment("fig3", SimScale.TINY)
        metrics = flatten_metrics("fig3", result.data)
        report = check_drift(metrics, paper_goldens("tiny"),
                             "paper", "tiny")
        assert report.experiments == ["fig3"]
        assert report.ok
        assert all(e.error == 0.0 for e in report.entries
                   if e.status == "pass")


# ----------------------------------------------------------------------
# run_experiment registry hook + runner CLI end-to-end
# ----------------------------------------------------------------------
class TestRunExperimentRegistry:
    def test_invocation_recorded(self, tmp_path):
        from repro.common.config import override
        from repro.experiments import run_experiment

        reg_dir = tmp_path / "reg"
        with override(registry_dir=str(reg_dir)):
            result = run_experiment("fig3", SimScale.TINY)
        assert "registry_record" in result.metadata
        records = RunRegistry(reg_dir).records("experiment")
        assert len(records) == 1
        assert records[0].experiments == ["fig3"]
        assert records[0].metrics["fig3/bfs/mean"] == pytest.approx(
            result.data["bfs"]["mean"]
        )

    def test_registry_off_by_default_outside_cli(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        assert config().registry_dir is None

    def test_registry_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", "off")
        assert config().registry_dir is None
        monkeypatch.setenv("REPRO_REGISTRY", "/tmp/somewhere")
        assert config().registry_dir == "/tmp/somewhere"


class TestRunnerGate:
    """The SMALL-scale smoke: registry + drift gate end-to-end."""

    def test_small_run_through_registry_and_paper_gate(
        self, tmp_path, capsys
    ):
        from repro.experiments.runner import main

        reg = tmp_path / "reg"
        rc = main([
            "fig3", "--scale", "small",
            "--registry", str(reg),
            "--baseline", "paper",
            "--save-baseline", str(tmp_path / "base.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "drift vs paper @ small [fig3]: PASS" in out
        kinds = sorted(r.kind for r in RunRegistry(reg).records())
        assert kinds == ["experiment", "run"]
        assert (tmp_path / "base.json").is_file()

    def test_perturbed_baseline_fails_and_names_metric(
        self, tmp_path, capsys
    ):
        from repro.experiments.runner import main

        base = tmp_path / "base.json"
        rc = main(["fig3", "--scale", "small", "--registry", "off",
                   "--save-baseline", str(base)])
        assert rc == 0
        body = json.loads(base.read_text())
        body["metrics"]["fig3/bfs/mean"] *= 1.5
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(body))
        capsys.readouterr()
        rc = main(["fig3", "--scale", "small", "--registry", "off",
                   "--baseline", str(bad)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        assert "fig3/bfs/mean" in out  # the offending metric is named

    def test_scale_mismatch_is_an_error(self, tmp_path, capsys):
        from repro.experiments.runner import main

        base = tmp_path / "base.json"
        assert main(["fig3", "--scale", "tiny", "--registry", "off",
                     "--save-baseline", str(base)]) == 0
        assert main(["fig3", "--scale", "small", "--registry", "off",
                     "--baseline", str(base)]) == 2

    def test_no_session_leaks(self):
        assert not telemetry.active()
