"""Integration tests: every experiment driver runs at TINY scale and
reproduces the paper's qualitative claims (the 'shape' checks)."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.experiments import ALL_EXPERIMENTS, ExperimentResult, get_driver

SCALE = SimScale.TINY


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (workload runs are memoized)."""
    return {exp: get_driver(exp)(SCALE) for exp in ALL_EXPERIMENTS}


def test_all_experiments_render(results):
    for exp, res in results.items():
        assert isinstance(res, ExperimentResult)
        text = res.render()
        assert len(text) > 0, exp


class TestStaticTables:
    def test_table1_lists_twelve(self, results):
        assert len(results["table1"].data) == 12

    def test_table5_lists_thirteen(self, results):
        assert len(results["table5"].data) == 13

    def test_table4_counts(self, results):
        d = results["table4"].data
        assert d["rodinia_count"] == 12
        assert d["parsec_count"] == 13
        assert d["rodinia_has_versions"] == ["leukocyte", "lud", "nw", "srad"]


class TestFig1:
    def test_compute_workloads_scale_with_sms(self, results):
        # TINY grids are smaller than 28 SMs, so full scaling only shows
        # at SMALL (asserted in the benchmark harness); here: no
        # regression from extra SMs.
        d = results["fig1"].data
        for name in ("hotspot", "kmeans"):
            assert d[name]["ipc28"] >= d[name]["ipc8"] * 0.95, name

    def test_bandwidth_workloads_do_not_scale(self, results):
        d = results["fig1"].data
        assert d["bfs"]["ipc28"] < d["bfs"]["ipc8"] * 1.4

    def test_extremes_ordering(self, results):
        """Paper: SRAD/HotSpot/Leukocyte high; MUMmer/NW/BFS low."""
        d = results["fig1"].data
        top = min(d[n]["ipc28"] for n in ("hotspot", "leukocyte"))
        bottom = max(d[n]["ipc28"] for n in ("mummer", "nw", "bfs"))
        assert top > 3 * bottom


class TestFig2:
    def test_mixes_are_distributions(self, results):
        for name, mix in results["fig2"].data.items():
            assert sum(mix.values()) == pytest.approx(1.0), name

    def test_paper_signatures(self, results):
        d = results["fig2"].data
        assert d["bfs"]["global"] == pytest.approx(1.0)
        assert d["kmeans"]["tex"] > 0.3
        assert d["heartwall"]["const"] > 0.2
        assert d["hotspot"]["shared"] > 0.5
        assert d["nw"]["shared"] > 0.4


class TestFig3:
    def test_buckets_are_distributions(self, results):
        for name, b in results["fig3"].data.items():
            total = b["1-8"] + b["9-16"] + b["17-24"] + b["25-32"]
            assert total == pytest.approx(1.0), name

    def test_bfs_low_occupancy(self, results):
        assert results["fig3"].data["bfs"]["1-8"] > 0.3

    def test_mummer_heavily_divergent(self, results):
        b = results["fig3"].data["mummer"]
        assert b["1-8"] + b["9-16"] > 0.4

    def test_streaming_kernels_full(self, results):
        assert results["fig3"].data["cfd"]["25-32"] == pytest.approx(1.0)


class TestFig4:
    def test_speedups_at_least_one(self, results):
        for name, s in results["fig4"].data.items():
            assert s[8] >= s[6] - 1e-9 >= s[4] - 2e-9, name
            assert s[4] == pytest.approx(1.0)

    def test_bandwidth_bound_benefit_most(self, results):
        d = results["fig4"].data
        sensitive = np.mean([d[n][8] for n in ("bfs", "mummer", "cfd")])
        insensitive = np.mean([d[n][8] for n in ("leukocyte", "lud")])
        assert sensitive >= insensitive


class TestTable3:
    def test_optimized_versions_faster(self, results):
        d = results["table3"].data
        assert d[("srad", 2)]["ipc"] > d[("srad", 1)]["ipc"]
        assert d[("leukocyte", 2)]["ipc"] > d[("leukocyte", 1)]["ipc"]

    def test_srad_shared_fraction_rises(self, results):
        d = results["table3"].data
        assert d[("srad", 2)]["shared"] > d[("srad", 1)]["shared"]

    def test_leukocyte_global_vanishes(self, results):
        d = results["table3"].data
        assert d[("leukocyte", 2)]["global"] < d[("leukocyte", 1)]["global"]


class TestFig5:
    def test_fermi_outperforms_gtx280(self, results):
        for name, r in results["fig5"].data.items():
            assert r["shared_bias"] < 1.0, name

    def test_global_heavy_prefer_l1_bias(self, results):
        d = results["fig5"].data
        assert d["mummer"]["l1_speedup"] > 1.0
        assert d["bfs"]["l1_speedup"] >= 1.0


class TestPB:
    def test_simd_and_channels_dominate(self, results):
        overall = results["pb"].data["overall"]
        top2 = sorted(overall, key=overall.get, reverse=True)[:3]
        assert "simd_width" in top2
        assert "n_mem_channels" in top2 or "bus_width_bytes" in top2

    def test_every_workload_ranked(self, results):
        per = results["pb"].data["per_workload"]
        assert len(per) == 12
        for name, ranked in per.items():
            shares = [s for _, _, s in ranked]
            assert sum(shares) == pytest.approx(1.0)


class TestSuiteComparison:
    def test_fig6_covers_both_suites_once(self, results):
        names = results["fig6"].data["names"]
        assert len(names) == 24  # 12 + 13 - shared streamcluster
        assert "streamcluster_p" not in names

    def test_fig6_clusters_mix_suites(self, results):
        """The paper: most clusters contain both Rodinia and Parsec apps."""
        from repro.workloads import base as wl
        clusters = results["fig6"].data["clusters"]
        suites_per_cluster = {}
        for name, c in clusters.items():
            suites_per_cluster.setdefault(c, set()).add(wl.get(name).meta.suite)
        mixed = sum(1 for s in suites_per_cluster.values() if len(s) == 2)
        assert mixed >= 1

    def test_fig6_dendrogram_lists_everyone(self, results):
        text = results["fig6"].data["dendrogram"]
        assert "streamcluster(R, P)" in text
        assert "mummer(R)" in text

    @pytest.mark.parametrize("fig", ["fig7", "fig8", "fig9"])
    def test_pca_coords_finite(self, results, fig):
        coords = results[fig].data["coords"]
        assert np.isfinite(coords).all()
        assert coords.shape[1] == 2

    def test_fig8_mummer_is_outlier(self, results):
        """Paper: 'MUMmer is a significant outlier' in the working-set plot."""
        assert "mummer" in results["fig8"].data["outliers"]

    def test_fig10_mummer_among_highest(self, results):
        d = results["fig10"].data
        rank = sorted(d, key=d.get, reverse=True)
        assert rank.index("mummer") < 6

    def test_fig11_mummer_biggest_rodinia_code(self, results):
        """Paper: Parsec code is larger except MUMmer (Rodinia's biggest).

        With the bytecode proxy, Heartwall's multi-stage pipeline
        competes; MUMmer must be in Rodinia's top two.
        """
        from repro.workloads import base as wl
        d = results["fig11"].data
        rodinia = {n: v for n, v in d.items()
                   if wl.get(n).meta.suite == "rodinia"}
        top2 = sorted(rodinia, key=rodinia.get, reverse=True)[:2]
        assert "mummer" in top2

    def test_fig12_footprints_positive(self, results):
        assert all(v > 0 for v in results["fig12"].data.values())


class TestTypedAPI:
    """run_experiment: the one entry point returning ExperimentResult."""

    def test_run_experiment_fills_provenance(self):
        from repro.experiments import run_experiment
        res = run_experiment("table1", SCALE)
        assert isinstance(res, ExperimentResult)
        assert res.id == res.experiment == "table1"
        assert res.title.startswith("Table I")
        assert res.metadata["scale"] == "tiny"
        assert res.metadata["duration_s"] >= 0.0
        assert res.metadata["n_tables"] == len(res.tables)
        assert res.span_id is None  # telemetry off

    def test_rows_are_typed_dicts(self):
        from repro.experiments import run_experiment
        res = run_experiment("table1", SCALE)
        assert len(res.rows) == 12
        assert all(row["_table"] == res.title for row in res.rows)
        assert {"Application", "Dwarf", "Domain"} <= set(res.rows[0])

    def test_run_experiment_attaches_span(self):
        from repro import telemetry
        from repro.experiments import run_experiment
        sink = telemetry.MemorySink()
        assert telemetry.start(sink)
        try:
            res = run_experiment("table1", SCALE)
        finally:
            telemetry.stop()
        opens = [e for e in sink.events if e["ev"] == "span_open"]
        assert res.span_id == opens[0]["id"]
        assert opens[0]["name"] == "experiment"
        assert opens[0]["attrs"]["experiment"] == "table1"

    def test_report_is_a_driver(self):
        from repro.experiments import run_experiment
        res = run_experiment("report", SCALE)
        assert res.id == "report"
        assert res.tables == []
        assert "# Workload characterization report" in res.render()
        assert res.data["markdown"] == res.text

    def test_fig6_render_includes_dendrogram(self, results):
        res = results["fig6"]
        assert res.text == res.data["dendrogram"]
        assert res.data["dendrogram"] in res.render()


class TestRunnerCLI:
    def test_cli_runs_one_experiment(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.runner import main
        with pytest.raises(KeyError):
            main(["fig99", "--scale", "tiny"])

    def test_jobs_with_no_cache_is_parser_error(self, capsys):
        """--jobs would warm a cache --no-cache just disabled: refuse."""
        from repro.core import artifacts
        from repro.experiments.runner import main
        before = artifacts.get_artifact_cache()
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "tiny", "--jobs", "2", "--no-cache"])
        err = capsys.readouterr().err
        assert "--no-cache" in err
        # The rejected invocation must not have touched global state.
        assert artifacts.get_artifact_cache() is before

    def test_no_cache_alone_disables_cache(self, capsys):
        from repro.core import artifacts
        from repro.experiments.runner import main
        before = artifacts.get_artifact_cache()
        try:
            assert main(["table1", "--scale", "tiny", "--no-cache"]) == 0
            assert artifacts.get_artifact_cache() is None
            assert "Table I" in capsys.readouterr().out
        finally:
            artifacts.set_artifact_cache(before)

    def test_trace_and_metrics_flags(self, capsys, tmp_path):
        from repro import telemetry
        from repro.experiments.runner import main
        path = str(tmp_path / "run.jsonl")
        assert main(
            ["table1", "--scale", "tiny", "--trace", path, "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "Telemetry: spans" in out
        assert not telemetry.active()  # session closed on exit
        events = telemetry.parse_trace(path)
        names = [e["name"] for e in events if e["ev"] == "span_open"]
        assert "run" in names and "experiment" in names

    def test_repro_trace_env_fallback(self, monkeypatch, tmp_path, capsys):
        from repro import telemetry
        from repro.experiments.runner import main
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        assert main(["table1", "--scale", "tiny"]) == 0
        events = telemetry.parse_trace(path)
        assert any(e["ev"] == "span_open" and e["name"] == "run"
                   for e in events)
