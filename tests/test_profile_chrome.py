"""Span profiling, Chrome-trace export, and sink hardening.

Covers the observability layer of ISSUE 4: live self-time attribution
(``start(profile=True)``) agrees with the offline rollup rebuilt from
the emitted trace; :func:`trace_to_chrome` produces structurally valid
Trace Event JSON; and :class:`JsonlSink` survives hostile lifecycles
(missing parent dirs, double close, interpreter-exit flush).
"""

import json
import time

import pytest

from repro import telemetry
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    aggregate_spans,
    hot_spans_table,
    profile_trace,
    trace_to_chrome,
)
from repro.telemetry.chrome import chrome_events
from repro.telemetry.profile import SessionProfile, live_aggregate


@pytest.fixture(autouse=True)
def _clean_session():
    telemetry._STATE = None
    yield
    telemetry._STATE = None


def _nested_workload():
    """outer wraps two inner spans; sleeps make self-time measurable."""
    with telemetry.span("outer"):
        time.sleep(0.03)            # outer self time (> combined inner)
        with telemetry.span("inner"):
            time.sleep(0.01)
        with telemetry.span("inner"):
            time.sleep(0.01)
    telemetry.count("work.done", 2)


# ----------------------------------------------------------------------
# Live profiling
# ----------------------------------------------------------------------
class TestLiveProfile:
    def test_self_time_excludes_children(self):
        telemetry.start(profile=True)
        _nested_workload()
        snap = telemetry.stop()
        outer_n, outer_total = snap["span_stats"]["outer"]
        _, outer_self = snap["self_stats"]["outer"]
        _, inner_total = snap["span_stats"]["inner"]
        assert outer_n == 1
        # Self = total minus the time inside the two inner spans.
        assert outer_self == pytest.approx(outer_total - inner_total,
                                           abs=5e-3)
        assert 0.0 < outer_self < outer_total
        # Leaves have self == total.
        assert snap["self_stats"]["inner"][1] == pytest.approx(
            inner_total, abs=5e-3
        )

    def test_peak_memory_gauge(self):
        telemetry.start(profile=True)
        ballast = [bytes(256) for _ in range(100)]
        snap = telemetry.stop()
        del ballast
        assert snap["gauges"]["profile.mem.peak_kb"] > 0

    def test_unprofiled_session_has_no_self_stats(self):
        telemetry.start()
        _nested_workload()
        snap = telemetry.stop()
        assert snap["self_stats"] == {}
        assert "profile.mem.peak_kb" not in snap["gauges"]

    def test_summary_gains_hot_span_table_only_when_profiling(self):
        telemetry.start(profile=True)
        _nested_workload()
        titles = [t.title for t in telemetry.summary()]
        assert any("hot spans" in t for t in titles)
        telemetry.stop()

    def test_session_profile_respects_foreign_tracemalloc(self):
        import tracemalloc

        tracemalloc.start()
        try:
            profile = SessionProfile()
            assert not profile._owns_tracemalloc
            gauges = profile.finish()
            assert "profile.mem.peak_kb" in gauges
            assert tracemalloc.is_tracing()  # not ours to stop
        finally:
            tracemalloc.stop()


# ----------------------------------------------------------------------
# Offline rollup agrees with the live one
# ----------------------------------------------------------------------
class TestOfflineAggregate:
    def test_offline_matches_live(self):
        sink = MemorySink()
        telemetry.start(sink=sink, profile=True)
        _nested_workload()
        snap = telemetry.stop()
        offline = {a.name: a for a in aggregate_spans(sink.events)}
        live = {a.name: a
                for a in live_aggregate(snap["span_stats"],
                                        snap["self_stats"])}
        assert set(offline) == set(live) == {"outer", "inner"}
        for name in offline:
            assert offline[name].count == live[name].count
            assert offline[name].total_s == pytest.approx(
                live[name].total_s, abs=5e-3
            )
            assert offline[name].self_s == pytest.approx(
                live[name].self_s, abs=5e-3
            )

    def test_unclosed_spans_skipped_children_still_counted(self):
        events = [
            {"ev": "span_open", "id": "s1", "parent": None, "name": "crash",
             "ts": 0.0},
            {"ev": "span_open", "id": "s2", "parent": "s1", "name": "child",
             "ts": 0.1},
            {"ev": "span_close", "id": "s2", "name": "child", "dur_s": 0.5},
            # s1 never closes (crashed session)
        ]
        aggs = {a.name: a for a in aggregate_spans(events)}
        assert "crash" not in aggs
        assert aggs["child"].total_s == pytest.approx(0.5)
        assert aggs["child"].self_s == pytest.approx(0.5)

    def test_hot_spans_table_shape(self):
        sink = MemorySink()
        telemetry.start(sink=sink)
        _nested_workload()
        telemetry.stop()
        table = hot_spans_table(aggregate_spans(sink.events), n=1)
        assert "top 1" in table.title
        assert len(table.rows) == 1
        assert table.rows[0][0] == "outer"  # hottest by self time

    def test_profile_trace_convenience(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.start(trace_path=str(path))
        _nested_workload()
        telemetry.stop()
        table = profile_trace(str(path))
        assert {row[0] for row in table.rows} == {"outer", "inner"}


# ----------------------------------------------------------------------
# Chrome Trace Event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def _trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry.start(trace_path=str(path),
                        meta={"scale": "tiny"})
        _nested_workload()
        telemetry.gauge("mem", 12.5)
        telemetry.stop()
        return str(path)

    def test_document_structure(self, tmp_path):
        out = trace_to_chrome(self._trace(tmp_path))
        assert out.endswith("run.chrome.json")
        doc = json.loads(open(out).read())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["schema_version"] == telemetry.SCHEMA_VERSION
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata first
        complete = [e for e in events if e["ph"] == "X"]
        assert sorted(e["name"] for e in complete) == [
            "inner", "inner", "outer"
        ]
        for e in complete:
            assert e["dur"] > 0 and e["ts"] >= 0  # microseconds
            assert "span_id" in e["args"]
        counters = {e["name"]: e["args"]["value"]
                    for e in events if e["ph"] == "C"}
        assert counters["work.done"] == 2
        assert counters["mem"] == 12.5

    def test_nesting_preserved_in_timestamps(self, tmp_path):
        doc = json.loads(open(trace_to_chrome(self._trace(tmp_path))).read())
        spans = {(e["name"], e["ts"]): e for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        outer = next(e for (n, _), e in spans.items() if n == "outer")
        for (name, ts), e in spans.items():
            if name == "inner":  # children nest inside the parent window
                assert outer["ts"] <= ts
                assert ts + e["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_unclosed_span_becomes_begin_event(self):
        events = [
            {"ev": "span_open", "id": "s1", "parent": None,
             "name": "hung", "ts": 0.25},
        ]
        out = chrome_events(events)
        begin = [e for e in out if e["ph"] == "B"]
        assert len(begin) == 1
        assert begin[0]["name"] == "hung"
        assert begin[0]["ts"] == pytest.approx(0.25e6)

    def test_failed_span_flagged(self):
        events = [
            {"ev": "span_open", "id": "s1", "parent": None,
             "name": "boom", "ts": 0.0},
            {"ev": "span_close", "id": "s1", "name": "boom",
             "dur_s": 0.1, "ok": False},
        ]
        (x,) = [e for e in chrome_events(events) if e["ph"] == "X"]
        assert x["args"]["error"] is True

    def test_exports_truncated_trace(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        telemetry.start(trace_path=str(path))
        with telemetry.span("ok"):
            pass
        telemetry.stop()
        with open(path, "a") as fh:
            fh.write('{"v":1,"ev":"span_open","id":"s9","na')  # killed writer
        doc = json.loads(open(trace_to_chrome(str(path))).read())
        assert any(e["ph"] == "X" and e["name"] == "ok"
                   for e in doc["traceEvents"])


# ----------------------------------------------------------------------
# Counter evolution on the timeline (ISSUE 5 satellite)
# ----------------------------------------------------------------------
class TestCounterEvolution:
    def test_samples_become_timestamped_c_events(self, tmp_path):
        path = tmp_path / "evo.jsonl"
        telemetry.start(trace_path=str(path))
        with telemetry.span("run"):
            telemetry.count("items", 1)
            telemetry.sample_counters()
            time.sleep(0.01)
            telemetry.count("items", 2)
            telemetry.sample_counters()
        telemetry.stop()
        events = telemetry.parse_trace(str(path))
        samples = [e for e in events
                   if e["ev"] == "counter" and e["name"] == "items"]
        # Two mid-session samples (cumulative) plus the stop total.
        assert [s["value"] for s in samples] == [1, 3, 3]
        assert samples[0]["ts"] < samples[1]["ts"] <= samples[2]["ts"]
        cs = [e for e in chrome_events(events)
              if e["ph"] == "C" and e["name"] == "items"]
        assert [c["args"]["value"] for c in cs] == [1, 3, 3]
        assert cs[0]["ts"] < cs[1]["ts"]  # a stepped track, not one dot
        # Last-sample-wins semantics keep diff_counters unaffected.
        assert telemetry.diff_counters(events, events) == []

    def test_prefix_filter_and_disabled_noop(self):
        telemetry.sample_counters()  # disabled: must not raise
        sink = MemorySink()
        telemetry.start(sink=sink)
        telemetry.count("a.x", 1)
        telemetry.count("b.y", 1)
        telemetry.sample_counters(prefix="a.")
        telemetry.stop()
        names = [e["name"] for e in sink.events if e["ev"] == "counter"]
        assert names == ["a.x", "a.x", "b.y"]  # sample, then stop totals

    def test_legacy_counter_events_still_land_at_end(self):
        events = [
            {"ev": "span_open", "id": "s1", "parent": None,
             "name": "w", "ts": 0.0},
            {"ev": "span_close", "id": "s1", "name": "w", "dur_s": 2.0},
            {"ev": "counter", "name": "old", "value": 7},  # no ts
        ]
        (c,) = [e for e in chrome_events(events) if e["ph"] == "C"]
        assert c["ts"] == pytest.approx(2.0e6)


# ----------------------------------------------------------------------
# Simulated-cycles clock domain (GPU profiles)
# ----------------------------------------------------------------------
class TestGpuTimeline:
    @pytest.fixture(scope="class")
    def profile(self):
        from repro.common.config import SimScale
        from repro.gpusim import GPU, GPUConfig, TimingModel
        from repro.workloads import base as wl

        wl.load_all()
        gpu = GPU(app_name="backprop")
        wl.get("backprop").gpu_fn(gpu, SimScale.TINY)
        return TimingModel(GPUConfig.sim_default()).profile(gpu.trace)

    def test_launch_row_tiles_the_timeline(self, profile):
        from repro.telemetry.chrome import gpu_timeline_events

        evs = gpu_timeline_events(profile, pid=7)
        assert all(e["pid"] == 7 for e in evs)
        launches = [e for e in evs if e["ph"] == "X" and e["tid"] == 0]
        assert len(launches) == len(profile.counters)
        cursor = 0.0
        for e in launches:
            assert e["ts"] == pytest.approx(cursor)
            assert e["args"]["bound"] in ("issue", "bandwidth", "latency")
            cursor = e["ts"] + e["dur"]
        assert cursor == pytest.approx(profile.total_cycles)

    def test_sm_lanes_and_channel_rows(self, profile):
        from repro.telemetry.chrome import gpu_timeline_events

        evs = gpu_timeline_events(profile)
        sm_x = [e for e in evs if e["ph"] == "X" and 1 <= e["tid"] < 64]
        ch_x = [e for e in evs if e["ph"] == "X" and e["tid"] >= 64]
        assert sm_x and ch_x
        for cs in profile.counters:
            lanes = [e for e in sm_x if e["args"]["launch"] == cs.launch_index]
            assert len(lanes) == cs.effective_sms
            assert all(e["dur"] == pytest.approx(cs.body_cycles)
                       for e in lanes)
        names = {e["args"]["name"] for e in evs if e["ph"] == "M"}
        assert any(n.startswith("SM") for n in names)
        assert any(n.startswith("DRAM ch") for n in names)

    def test_counter_tracks_step_per_launch(self, profile):
        from repro.telemetry.chrome import gpu_timeline_events

        evs = gpu_timeline_events(profile)
        dram = [e for e in evs if e["ph"] == "C" and e["name"] == "dram_bytes"]
        assert len(dram) == len(profile.counters)
        assert [c["args"]["value"] for c in dram] == [
            cs.dram_bytes for cs in profile.counters
        ]

    def test_profiles_to_chrome_document(self, tmp_path, profile):
        from repro.telemetry.chrome import profiles_to_chrome

        out = profiles_to_chrome([profile, profile],
                                 str(tmp_path / "gpu.chrome.json"))
        doc = json.loads(open(out).read())
        assert doc["otherData"]["clock"].startswith("simulated_cycles")
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}  # one Chrome process per app profile
        procs = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert all("backprop" in p["args"]["name"] for p in procs)


# ----------------------------------------------------------------------
# JsonlSink hardening
# ----------------------------------------------------------------------
class TestJsonlSinkHardening:
    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"v": 1, "ev": "meta", "clock": "perf_counter"})
        assert telemetry.parse_trace(str(path))[0]["ev"] == "meta"

    def test_close_idempotent_and_emit_after_close_dropped(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.emit({"v": 1, "ev": "meta"})
        sink.close()
        sink.close()  # second close must not raise
        sink.emit({"v": 1, "ev": "meta"})  # silently dropped, no raise
        assert len((tmp_path / "t.jsonl").read_text().splitlines()) == 1

    def test_append_extends_existing_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            telemetry.start(sink=JsonlSink(str(path), append=True))
            with telemetry.span("s"):
                pass
            telemetry.stop()
        events = telemetry.parse_trace(str(path))
        assert sum(1 for e in events if e["ev"] == "meta") == 2
        assert sum(1 for e in events if e["ev"] == "span_close") == 2

    def test_atexit_hook_stops_balanced_session(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.start(trace_path=str(path))
        telemetry.count("c", 3)
        telemetry._close_at_exit()  # what atexit would run
        assert not telemetry.active()
        events = telemetry.parse_trace(str(path))
        c = next(e for e in events
                 if e["ev"] == "counter" and e["name"] == "c")
        assert c["value"] == 3 and c["v"] == 1

    def test_atexit_hook_flushes_crashed_session(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry.start(trace_path=str(path))
        span = telemetry.span("hung")
        span.__enter__()  # never exits: simulated crash mid-span
        telemetry._close_at_exit()
        events = telemetry.parse_trace(str(path), allow_truncated=True)
        assert any(e["ev"] == "span_open" and e["name"] == "hung"
                   for e in events)
        telemetry._STATE = None  # clean up the abandoned session

    def test_discard_leaves_sinks_usable_by_owner(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        telemetry.start(sink=sink)
        telemetry.discard()
        assert not telemetry.active()
        assert not sink._fh.closed  # parent's descriptor untouched
        sink.close()


# ----------------------------------------------------------------------
# Parallel-runner worker path (in-process)
# ----------------------------------------------------------------------
class TestWarmWorkloadCollect:
    def test_collect_returns_counters_and_writes_pid_trace(self, tmp_path):
        import os

        from repro.core.features import clear_caches, warm_workload

        clear_caches()
        trace = tmp_path / "warm.jsonl"
        name, produced, counters = warm_workload(
            "backprop", "tiny", trace_path=str(trace), collect=True
        )
        assert name == "backprop" and produced
        assert counters  # the child session's totals came back
        child = tmp_path / f"warm.{os.getpid()}.jsonl"
        assert child.is_file()
        events = telemetry.parse_trace(str(child))
        metas = [e for e in events if e["ev"] == "meta"]
        assert metas[0]["attrs"]["workload"] == "backprop"
        assert not telemetry.active()  # child session fully stopped

    def test_collect_discards_inherited_session(self, tmp_path):
        from repro.core.features import clear_caches, warm_workload

        clear_caches()
        parent_sink = MemorySink()
        telemetry.start(sink=parent_sink)  # simulate the forked parent state
        n_parent_events = len(parent_sink.events)
        _, _, counters = warm_workload("backprop", "tiny", collect=True)
        # The worker abandoned the inherited session rather than writing
        # into the parent's sink, and ran its own.
        assert len(parent_sink.events) == n_parent_events
        assert counters
        assert not telemetry.active()
