"""Telemetry subsystem: spans, counters, JSONL schema, runtime config.

Covers the guarantees docs/TELEMETRY.md promises: every emitted event
parses and carries valid span parentage (round-trip), counters report
exact values for known workloads (a warm artifact-cache run scores
exactly one hit), and spans close in LIFO order under arbitrary nesting
(hypothesis).
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.common.config import (
    DEFAULT_BATCH_LANES,
    RuntimeConfig,
    SimScale,
    config,
    override,
)
from repro.core import artifacts
from repro.core.features import clear_caches, gpu_trace_for
from repro.gpusim import GPU


@pytest.fixture(autouse=True)
def _clean_session():
    """No telemetry session leaks into or out of any test."""
    telemetry._STATE = None
    yield
    telemetry._STATE = None


# ----------------------------------------------------------------------
# Core span/counter mechanics
# ----------------------------------------------------------------------
class TestDisabled:
    def test_disabled_by_default(self):
        assert not telemetry.active()
        # Every primitive is a cheap no-op.
        telemetry.count("x")
        telemetry.gauge("y", 1.0)
        assert telemetry.counters() == {}
        assert telemetry.counter_value("x") == 0
        assert telemetry.summary() == []
        assert telemetry.current_span_id() is None

    def test_disabled_span_is_shared_noop(self):
        s1 = telemetry.span("a")
        s2 = telemetry.span("b", deep=True)
        assert s1 is s2  # the singleton: no allocation while disabled
        with s1 as sp:
            assert sp.id is None

    def test_stop_without_start_is_harmless(self):
        snap = telemetry.stop()
        assert snap["counters"] == {}


class TestSession:
    def test_start_is_exclusive(self):
        assert telemetry.start()
        assert not telemetry.start()  # second start refused, no clobber
        telemetry.count("k", 3)
        assert telemetry.counter_value("k") == 3
        snap = telemetry.stop()
        assert snap["counters"] == {"k": 3}
        assert not telemetry.active()

    def test_span_ids_and_parentage(self):
        sink = telemetry.MemorySink()
        telemetry.start(sink)
        with telemetry.span("outer") as outer:
            assert telemetry.current_span_id() == outer.id
            with telemetry.span("inner", name="attr-named") as inner:
                assert inner.parent_id == outer.id
        assert outer.parent_id is None
        telemetry.stop()
        opens = [e for e in sink.events if e["ev"] == "span_open"]
        assert [e["name"] for e in opens] == ["outer", "inner"]
        assert opens[1]["parent"] == opens[0]["id"]
        assert opens[1]["attrs"] == {"name": "attr-named"}

    def test_stop_with_open_span_raises(self):
        telemetry.start()
        sp = telemetry.span("dangling").__enter__()
        with pytest.raises(RuntimeError, match="still open"):
            telemetry.stop()
        sp.__exit__(None, None, None)
        telemetry.stop()

    def test_non_lifo_close_raises(self):
        telemetry.start()
        a = telemetry.span("a").__enter__()
        b = telemetry.span("b").__enter__()
        with pytest.raises(RuntimeError, match="LIFO"):
            a.__exit__(None, None, None)

    def test_spanned_decorator(self):
        @telemetry.spanned("decorated")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # disabled: plain call
        telemetry.start()
        assert fn(2) == 3
        snap = telemetry.stop()
        assert snap["span_stats"]["decorated"][0] == 1

    def test_summary_tables(self):
        telemetry.start()
        with telemetry.span("phase"):
            telemetry.count("events", 5)
            telemetry.gauge("ratio", 0.5)
        tables = telemetry.summary()
        titles = [t.title for t in tables]
        assert titles == [
            "Telemetry: spans", "Telemetry: counters", "Telemetry: gauges"
        ]
        counters = tables[1]
        assert counters.column("counter") == ["events"]
        assert counters.column("value") == ["5"]
        telemetry.stop()


# ----------------------------------------------------------------------
# Hypothesis: spans always close LIFO under arbitrary nesting
# ----------------------------------------------------------------------
nesting = st.recursive(
    st.just([]),
    lambda children: st.lists(children, min_size=1, max_size=4),
    max_leaves=12,
)


def _run_tree(tree, depth=0):
    for i, child in enumerate(tree):
        with telemetry.span(f"d{depth}"):
            _run_tree(child, depth + 1)


@settings(max_examples=40, deadline=None)
@given(tree=nesting)
def test_spans_close_lifo(tree):
    telemetry._STATE = None
    sink = telemetry.MemorySink()
    telemetry.start(sink)
    _run_tree(tree)
    telemetry.stop()
    # Replay the event stream against an explicit stack: every close must
    # match the innermost open span, and parentage must mirror the stack.
    stack = []
    for e in sink.events:
        if e["ev"] == "span_open":
            assert e["parent"] == (stack[-1] if stack else None)
            stack.append(e["id"])
        elif e["ev"] == "span_close":
            assert stack, "close without open"
            assert stack.pop() == e["id"], "non-LIFO close"
    assert stack == []


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
class TestJsonl:
    def test_every_line_parses_and_nests(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        telemetry.start(trace_path=path)
        with telemetry.span("run", scale="tiny"):
            with telemetry.span("experiment", experiment="x"):
                telemetry.count("hits", 2)
            telemetry.gauge("occupancy", 0.75)
        telemetry.stop()
        with open(path) as fh:
            lines = [l for l in fh.read().splitlines() if l]
        raw = [json.loads(l) for l in lines]  # every line is JSON
        events = telemetry.parse_trace(path)  # and schema-valid
        assert len(raw) == len(events)
        assert events[0]["ev"] == "meta"
        kinds = [e["ev"] for e in events]
        assert kinds.count("span_open") == kinds.count("span_close") == 2
        opens = {e["id"]: e for e in events if e["ev"] == "span_open"}
        child = next(e for e in opens.values() if e["name"] == "experiment")
        parent = next(e for e in opens.values() if e["name"] == "run")
        assert child["parent"] == parent["id"]
        # counter/gauge totals land at stop(), timestamped so the
        # Chrome exporter can place them on the timeline
        hits = next(e for e in events
                    if e["ev"] == "counter" and e["name"] == "hits")
        assert hits["value"] == 2
        assert hits["v"] == telemetry.SCHEMA_VERSION
        assert hits["ts"] >= 0.0
        assert any(e["ev"] == "gauge" and e["name"] == "occupancy"
                   for e in events)

    def test_parse_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 999, "ev": "meta"}\n')
        with pytest.raises(ValueError, match="schema version"):
            telemetry.parse_trace(str(path))

    def test_parse_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"v": telemetry.SCHEMA_VERSION, "ev": "mystery"})
            + "\n"
        )
        with pytest.raises(ValueError, match="unknown event kind"):
            telemetry.parse_trace(str(path))

    def test_diff_counters(self):
        a = [{"ev": "counter", "name": "x", "value": 1},
             {"ev": "counter", "name": "y", "value": 2}]
        b = [{"ev": "counter", "name": "y", "value": 2},
             {"ev": "counter", "name": "z", "value": 3}]
        assert telemetry.diff_counters(a, b) == [
            ("x", 1, 0), ("z", 0, 3)
        ]

    def test_diff_counters_empty_traces(self):
        assert telemetry.diff_counters([], []) == []
        a = [{"ev": "counter", "name": "x", "value": 1}]
        assert telemetry.diff_counters(a, []) == [("x", 1, 0)]
        assert telemetry.diff_counters([], a) == [("x", 0, 1)]


class TestParseTraceEdges:
    """Hostile trace files: truncation, mixed schemas, empty traces."""

    def _valid_line(self, **extra):
        event = {"v": telemetry.SCHEMA_VERSION, "ev": "meta"}
        event.update(extra)
        return json.dumps(event)

    def test_empty_file_is_an_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert telemetry.parse_trace(str(path)) == []
        path.write_text("\n\n")  # blank lines only
        assert telemetry.parse_trace(str(path)) == []

    def test_truncated_final_line_strict_vs_forgiving(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            self._valid_line() + "\n"
            + '{"v":1,"ev":"span_open","id":"s1","na'  # killed mid-write
        )
        with pytest.raises(ValueError, match="truncated trace"):
            telemetry.parse_trace(str(path))
        events = telemetry.parse_trace(str(path), allow_truncated=True)
        assert len(events) == 1  # good prefix survives, bad tail dropped
        assert events[0]["ev"] == "meta"

    def test_truncated_middle_line_always_errors(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            self._valid_line() + "\n"
            + '{"v":1,"ev":"span_open","id":"s1","na\n'
            + self._valid_line() + "\n"
        )
        # Corruption followed by valid lines is not truncation — the
        # forgiving mode must still refuse it.
        with pytest.raises(ValueError, match="corrupt line"):
            telemetry.parse_trace(str(path), allow_truncated=True)

    def test_mixed_schema_versions_refused(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            self._valid_line() + "\n"
            + json.dumps({"v": telemetry.SCHEMA_VERSION + 1, "ev": "meta"})
            + "\n"
        )
        with pytest.raises(ValueError, match="schema version"):
            telemetry.parse_trace(str(path))

    def test_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._valid_line() + "\n" + '{"v": 2, "ev": "meta"}\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            telemetry.parse_trace(str(path))


# ----------------------------------------------------------------------
# Counter correctness on known executions
# ----------------------------------------------------------------------
def _fill_kernel(ctx, out):
    i = ctx.gtid
    with ctx.masked(i < out.size):
        ctx.store(out, i, ctx.const(2.0))


class TestCounterCorrectness:
    def test_known_kernel_launch(self):
        """One batched launch: routing and occupancy counters are exact."""
        telemetry.start()
        gpu = GPU()
        out = gpu.alloc(8 * 64, dtype=np.float32)
        gpu.launch(_fill_kernel, 8, 64, out)
        c = telemetry.counters()
        telemetry.stop()
        assert c["gpusim.batch.launches.batched"] == 1
        assert c["gpusim.batch.blocks.batched"] == 8
        assert "gpusim.batch.launches.scalar" not in c
        launch = gpu.trace.launches[0]
        assert c["gpusim.batch.warp_insts"] == launch.issued_warp_insts
        assert c["gpusim.batch.active_lanes"] == launch.thread_insts

    def test_scalar_fallback_counted(self):
        telemetry.start()
        gpu = GPU()
        out = gpu.alloc(64, dtype=np.float32)
        with override(gpu_batch=False):
            gpu.launch(_fill_kernel, 4, 16, out)
        c = telemetry.counters()
        telemetry.stop()
        assert c["gpusim.batch.launches.scalar"] == 1
        assert c["gpusim.batch.blocks.scalar"] == 4
        assert "gpusim.batch.launches.batched" not in c

    def test_artifact_cache_exact_hit_count(self, tmp_path):
        """A warm second run scores exactly one disk hit, zero executes."""
        prev = artifacts.get_artifact_cache()
        artifacts.set_artifact_cache(artifacts.ArtifactCache(tmp_path))
        try:
            clear_caches()
            gpu_trace_for("backprop", SimScale.TINY)  # cold: execute+put
            clear_caches()  # drop the in-process memo, keep the disk
            telemetry.start()
            trace = gpu_trace_for("backprop", SimScale.TINY)
            again = gpu_trace_for("backprop", SimScale.TINY)  # memo hit
            c = telemetry.counters()
            snap_spans = telemetry.stop()["span_stats"]
            assert c["artifacts.gpu.hit"] == 1
            assert "artifacts.gpu.miss" not in c
            assert "artifacts.gpu.put" not in c
            assert c["features.memo.gpu.miss"] == 1
            assert c["features.memo.gpu.hit"] == 1
            assert again is trace
            # the warm path never opened a workload span: nothing ran
            assert "workload" not in snap_spans
        finally:
            artifacts.set_artifact_cache(prev)
            clear_caches()


# ----------------------------------------------------------------------
# RuntimeConfig
# ----------------------------------------------------------------------
class TestRuntimeConfig:
    def test_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_GPU_BATCH", raising=False)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cfg = config()
        assert cfg.gpu_batch is True
        assert cfg.trace is None
        monkeypatch.setenv("REPRO_GPU_BATCH", "off")
        monkeypatch.setenv("REPRO_TRACE", "out.jsonl")
        cfg = config()
        assert cfg.gpu_batch is False
        assert cfg.trace == "out.jsonl"

    def test_lanes_parse_matches_legacy(self, monkeypatch):
        monkeypatch.setenv("REPRO_GPU_BATCH_LANES", "junk")
        assert config().gpu_batch_lanes == DEFAULT_BATCH_LANES
        monkeypatch.setenv("REPRO_GPU_BATCH_LANES", "0")
        assert config().gpu_batch_lanes == 1  # clamped, as before
        monkeypatch.setenv("REPRO_GPU_BATCH_LANES", "4096")
        assert config().gpu_batch_lanes == 4096

    def test_override_nests_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        with override(cache=False):
            assert config().cache is False
            with override(gpu_batch=False):
                assert config().cache is False  # inherited from outer
                assert config().gpu_batch is False
            assert config().gpu_batch is True
        assert config().cache is True

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GPU_BATCH", "off")
        with override(gpu_batch=True):
            assert config().gpu_batch is True
        assert config().gpu_batch is False

    def test_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            config().gpu_batch = False

    def test_default_cache_honors_config(self):
        with override(cache=False):
            assert artifacts.default_cache() is None
        with override(cache=True, cache_dir="/tmp/somewhere-else"):
            cache = artifacts.default_cache()
            assert str(cache.root) == "/tmp/somewhere-else"
