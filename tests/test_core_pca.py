"""Tests for the PCA implementation (validated against numpy SVD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import PCA


def _random_matrix(seed, n=20, d=6):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (n, d)) @ rng.normal(0.0, 1.0, (d, d))


class TestPCACorrectness:
    def test_variances_match_svd(self):
        x = _random_matrix(0)
        p = PCA().fit(x)
        z = (x - x.mean(0)) / x.std(0, ddof=1)
        s = np.linalg.svd(z, compute_uv=False)
        expected = np.sort(s ** 2 / (len(x) - 1))[::-1]
        np.testing.assert_allclose(p.explained_variance_, expected, atol=1e-10)

    def test_components_orthonormal(self):
        p = PCA().fit(_random_matrix(1))
        gram = p.components_ @ p.components_.T
        np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-10)

    def test_transform_decorrelates(self):
        x = _random_matrix(2, n=100)
        scores = PCA().fit_transform(x)
        cov = np.cov(scores.T)
        off = cov - np.diag(np.diag(cov))
        assert np.abs(off).max() < 1e-8

    def test_variance_ratio_sums_to_one(self):
        p = PCA().fit(_random_matrix(3))
        assert p.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_deterministic_sign(self):
        x = _random_matrix(4)
        a = PCA().fit(x).components_
        b = PCA().fit(x.copy()).components_
        np.testing.assert_array_equal(a, b)

    def test_constant_feature_handled(self):
        x = _random_matrix(5)
        x[:, 2] = 3.14
        scores = PCA().fit_transform(x)
        assert np.isfinite(scores).all()

    def test_n_components_truncates(self):
        p = PCA(n_components=2).fit(_random_matrix(6))
        assert p.components_.shape[0] == 2
        assert p.transform(_random_matrix(6)).shape[1] == 2

    def test_n_components_for_variance(self):
        x = _random_matrix(7, n=50)
        p = PCA().fit(x)
        k = p.n_components_for_variance(0.9)
        assert p.explained_variance_ratio_[:k].sum() >= 0.9
        if k > 1:
            assert p.explained_variance_ratio_[: k - 1].sum() < 0.9


class TestPCAValidation:
    def test_requires_2d(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros(5))

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            PCA().fit(np.zeros((1, 4)))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            PCA().transform(np.zeros((3, 3)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_reconstruction_with_all_components(self, seed):
        x = _random_matrix(seed, n=12, d=4)
        p = PCA().fit(x)
        z = (x - p.mean_) / p.scale_
        recon = p.transform(x) @ p.components_
        np.testing.assert_allclose(recon, z, atol=1e-8)
