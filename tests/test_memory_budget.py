"""LARGE-tier runs must fit a hard memory budget (out-of-core proof).

Each case executes one workload at ``SimScale.LARGE`` (>=10M trace
records) in a subprocess whose address space is capped with
``resource.setrlimit`` and whose trace budget (``REPRO_TRACE_BUDGET``)
is far below the dense trace size — so the run only completes if the
chunked pipeline actually spills and streams.  The subprocess also
asserts its ``ru_maxrss`` against a tighter soft cap and that spill
telemetry fired.

These runs cost ~30-60 s each, so they are opt-in: set
``REPRO_MEMBUDGET=1`` (the CI memory-budget job does).
"""

import os
import subprocess
import sys
import textwrap

import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_MEMBUDGET", "").strip().lower()
    not in ("1", "yes", "true", "on"),
    reason="memory-budget runs are opt-in (set REPRO_MEMBUDGET=1)",
)

#: Trace budget for the child: ~half the dense LARGE trace (so sealed
#: chunks must spill), while leaving room for analysis carry state.
TRACE_BUDGET = "64M"

#: Chunk rows for the child: small enough that even per-launch GPU
#: stores (a few hundred thousand transactions each) seal chunks and
#: participate in the budget, instead of living in open tails.
TRACE_CHUNK_ROWS = str(1 << 18)

_CHILD = textwrap.dedent("""
    import resource, sys

    kind, name, rss_cap_mb = sys.argv[1], sys.argv[2], int(sys.argv[3])
    # Hard backstop: the kernel kills any allocation past the cap.
    cap = (rss_cap_mb + 2048) * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    from repro import telemetry
    from repro.common.config import SimScale
    from repro.workloads import base as wl

    wl.load_all()
    telemetry.start()

    if kind == "cpu":
        from repro.cpusim import Machine
        from repro.cpusim.metrics import characterize_trace

        machine = Machine()
        wl.get(name).cpu_fn(machine, SimScale.LARGE)
        n = machine.n_accesses
        characterize_trace(machine, name)
    else:
        from repro.gpusim import GPUConfig, TimingModel
        from repro.gpusim.gpu import GPU

        gpu = GPU(app_name=name)
        wl.get(name).gpu_fn(gpu, SimScale.LARGE)
        n = sum(lt.n_transactions for lt in gpu.trace.launches)
        TimingModel(GPUConfig()).time(gpu.trace)

    assert n >= 10_000_000, f"LARGE must trace >=10M records, got {n}"
    spilled = telemetry.stop()["counters"].get("chunkstore.spill.chunks", 0)
    assert spilled > 0, "budget was set to force spill; none happened"
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024
    assert rss_mb <= rss_cap_mb, f"peak RSS {rss_mb}MB > cap {rss_cap_mb}MB"
    print(f"OK {kind}/{name}: n={n} spilled={spilled} rss={rss_mb}MB")
""")


@pytest.mark.parametrize(
    "kind,name,rss_cap_mb",
    [
        ("cpu", "hotspot", 1024),
        ("gpu", "hotspot", 3072),
        ("gpu", "srad", 3072),
    ],
)
def test_large_run_fits_memory_budget(kind, name, rss_cap_mb):
    env = dict(os.environ)
    env["REPRO_TRACE_BUDGET"] = TRACE_BUDGET
    env["REPRO_TRACE_CHUNK"] = TRACE_CHUNK_ROWS
    env["REPRO_CACHE"] = "off"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), os.pardir, "src"),
            env.get("PYTHONPATH"),
        ) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, kind, name, str(rss_cap_mb)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{kind}/{name} failed under budget:\n{proc.stdout}\n{proc.stderr}"
    )
    assert f"OK {kind}/{name}" in proc.stdout
