"""Property-based tests of the SIMT DSL's execution semantics.

These pin the DSL's contract against plain numpy: masked stores write
exactly the active lanes, accounting equals the sum of active lanes,
and structured control flow matches a per-lane Python interpretation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpusim import GPU
from repro.gpusim.isa import Category


def masks(n=64):
    return arrays(np.bool_, n, elements=st.booleans())


class TestMaskedSemantics:
    @settings(max_examples=30, deadline=None)
    @given(masks())
    def test_masked_store_touches_only_active_lanes(self, mask):
        gpu = GPU()
        out = gpu.to_device(np.full(64, -1.0, dtype=np.float64))

        def k(ctx, out):
            with ctx.masked(mask):
                ctx.store(out, ctx.tidx, ctx.tidx.astype(np.float64))

        gpu.launch(k, 1, 64, out)
        got = out.to_host()
        expect = np.where(mask, np.arange(64.0), -1.0)
        np.testing.assert_array_equal(got, expect)

    @settings(max_examples=30, deadline=None)
    @given(masks())
    def test_thread_inst_accounting_equals_active_lanes(self, mask):
        gpu = GPU()

        def k(ctx):
            with ctx.masked(mask):
                ctx.alu(1)

        gpu.launch(k, 1, 64)
        lt = gpu.trace.launches[0]
        alu_threads = int(mask.sum())
        # One branch charged at full mask by masked(), plus the ALU at
        # the reduced mask.
        assert lt.thread_insts == 64 + alu_threads

    @settings(max_examples=30, deadline=None)
    @given(masks(), masks())
    def test_nested_masks_are_intersection(self, m1, m2):
        gpu = GPU()
        out = gpu.to_device(np.zeros(64, dtype=np.int64))

        def k(ctx, out):
            with ctx.masked(m1):
                with ctx.masked(m2):
                    ctx.store(out, ctx.tidx, 1)

        gpu.launch(k, 1, 64, out)
        np.testing.assert_array_equal(out.to_host(), (m1 & m2).astype(np.int64))

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.int64, 32, elements=st.integers(0, 9)))
    def test_while_matches_per_lane_python(self, trips):
        gpu = GPU()
        out = gpu.to_device(np.zeros(32, dtype=np.int64))

        def k(ctx, out):
            count = ctx.const(0, dtype=np.int64)

            def cond():
                return count < trips

            for _ in ctx.while_(cond):
                count = np.where(ctx.mask, count + 1, count)
            ctx.store(out, ctx.tidx, count)

        gpu.launch(k, 1, 32, out)
        np.testing.assert_array_equal(out.to_host(), trips)

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.int64, 64, elements=st.integers(0, 63)), masks())
    def test_gather_matches_numpy(self, idx, mask):
        gpu = GPU()
        data = np.arange(100.0, 164.0)
        src = gpu.to_device(data)
        out = gpu.to_device(np.zeros(64))

        def k(ctx, src, out):
            with ctx.masked(mask):
                ctx.store(out, ctx.tidx, ctx.load(src, idx))

        gpu.launch(k, 1, 64, src, out)
        expect = np.where(mask, data[idx], 0.0)
        np.testing.assert_array_equal(out.to_host(), expect)


class TestOccupancyAccounting:
    @settings(max_examples=30, deadline=None)
    @given(masks())
    def test_histogram_total_matches_live_warps(self, mask):
        gpu = GPU()

        def k(ctx):
            with ctx.masked(mask):
                ctx.alu(1)

        gpu.launch(k, 1, 64)
        lt = gpu.trace.launches[0]
        alu_warps = sum(
            1 for w in range(2) if mask[w * 32:(w + 1) * 32].any()
        )
        # masked() charges a branch at the full mask (2 warps).
        assert lt.category_warp_insts[Category.ALU] == alu_warps
        assert lt.occupancy_hist.sum() == lt.issued_warp_insts

    @settings(max_examples=20, deadline=None)
    @given(masks())
    def test_histogram_buckets_match_popcounts(self, mask):
        gpu = GPU()

        def k(ctx):
            with ctx.masked(mask):
                ctx.alu(1)

        gpu.launch(k, 1, 64)
        hist = gpu.trace.launches[0].occupancy_hist
        for w in range(2):
            pop = int(mask[w * 32:(w + 1) * 32].sum())
            if pop:
                assert hist[pop - 1] >= 1


class TestEdgeBehaviour:
    def test_zero_trip_while(self):
        gpu = GPU()
        ran = {"n": 0}

        def k(ctx):
            def cond():
                return ctx.const(False, dtype=bool)

            for _ in ctx.while_(cond):
                ran["n"] += 1

        gpu.launch(k, 1, 32)
        assert ran["n"] == 0

    def test_all_false_mask_skips_charges(self):
        gpu = GPU()

        def k(ctx):
            with ctx.masked(np.zeros(32, dtype=bool)):
                ctx.alu(5)
                ctx.store(gpu.alloc(1), ctx.const(0, np.int64), 1.0)

        gpu.launch(k, 1, 32)
        lt = gpu.trace.launches[0]
        assert lt.category_warp_insts[Category.ALU] == 0
        assert lt.category_warp_insts[Category.MEM] == 0

    def test_single_lane_block(self):
        gpu = GPU()
        out = gpu.alloc(1, dtype=np.int64)

        def k(ctx, out):
            ctx.store(out, ctx.tidx, 42)

        gpu.launch(k, 1, 1, out)
        assert out.to_host()[0] == 42
        assert gpu.trace.occupancy_hist[0] >= 1

    def test_nan_inputs_do_not_crash(self):
        gpu = GPU()
        src = gpu.to_device(np.array([np.nan, 1.0] * 16))
        out = gpu.alloc(32, dtype=np.float64)

        def k(ctx, src, out):
            v = ctx.load(src, ctx.tidx)
            ctx.alu(2)
            with ctx.masked(~np.isnan(v)):
                ctx.store(out, ctx.tidx, v * 2)

        gpu.launch(k, 1, 32, src, out)
        got = out.to_host()
        assert got[1] == 2.0 and got[0] == 0.0
