"""Integration tests for the Section VII extension experiments."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.experiments import get_driver

SCALE = SimScale.TINY


@pytest.fixture(scope="module")
def ext():
    return {
        name: get_driver(name)(SCALE)
        for name in ("ext_divergence", "ext_concurrent", "ext_coverage",
                     "ext_crossarch", "ext_coherence")
    }


class TestDivergence:
    def test_all_workloads_covered(self, ext):
        d = ext["ext_divergence"].data
        assert sum(1 for k in d if isinstance(d[k], dict)) == 12

    def test_efficiencies_in_range(self, ext):
        for name, stats in ext["ext_divergence"].data.items():
            assert 0.0 < stats["simd_efficiency"] <= 1.0, name
            assert stats["divergence_speedup_bound"] >= 0.99, name

    def test_divergent_workloads_least_efficient(self, ext):
        d = ext["ext_divergence"].data
        divergent = min(d["cfd"]["simd_efficiency"],
                        d["kmeans"]["simd_efficiency"])
        assert d["bfs"]["simd_efficiency"] < divergent
        assert d["nw"]["simd_efficiency"] < divergent

    def test_width_sweep_monotone_for_compute(self, ext):
        ipc = ext["ext_divergence"].data["hotspot"]["ipc_by_width"]
        assert ipc[32] >= ipc[16] >= ipc[8]


class TestConcurrent:
    def test_speedups_bounded(self, ext):
        for pair, s in ext["ext_concurrent"].data.items():
            assert 0.99 <= s <= 2.01, pair

    def test_some_pair_benefits(self, ext):
        assert max(ext["ext_concurrent"].data.values()) > 1.05


class TestCoverage:
    def test_joint_volume_largest(self, ext):
        d = ext["ext_coverage"].data
        assert d["joint"]["volume"] >= d["rodinia"]["volume"]
        assert d["joint"]["volume"] >= d["parsec"]["volume"]

    def test_suites_complement(self, ext):
        """The paper's conclusion: the suites complement each other."""
        d = ext["ext_coverage"].data
        assert d["gain_rodinia_over_parsec"] > 0.0
        assert d["gain_parsec_over_rodinia"] > 0.0

    def test_representative_subset_is_proper(self, ext):
        d = ext["ext_coverage"].data
        assert 2 <= len(d["representative_subset"]) <= 24


class TestCrossArch:
    def test_correlations_in_range(self, ext):
        for key, rho in ext["ext_crossarch"].data.items():
            if key == "rows":
                continue
            assert -1.0 <= rho <= 1.0, key

    def test_branchiness_vs_simd_efficiency_negative(self, ext):
        """Branchy CPU code should diverge on the GPU (negative rho)."""
        d = ext["ext_crossarch"].data
        assert d["cpu_branch_fraction~gpu_simd_eff"] < 0.1

    def test_per_workload_rows_complete(self, ext):
        assert len(ext["ext_crossarch"].data["rows"]) == 12


class TestCoherence:
    def test_all_workloads_covered(self, ext):
        d = ext["ext_coherence"].data
        names = [k for k in d if k != "most_coherence_bound"]
        assert len(names) == 24

    def test_canneal_among_most_coherence_bound(self, ext):
        assert "canneal" in ext["ext_coherence"].data["most_coherence_bound"]

    def test_no_sharing_no_invalidations(self, ext):
        d = ext["ext_coherence"].data
        assert d["blackscholes"]["invals_per_kiloref"] == 0.0
