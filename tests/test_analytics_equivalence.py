"""Property-based equivalence: vectorized analytics vs. scalar oracles.

Every batch engine in :mod:`repro.analytics` must match its per-access
scalar oracle *bit for bit* — same histograms, same stats, same
per-access hit masks, same final cache state.  Hypothesis drives random
traces (plus adversarial shapes: every access in one set, a single
line repeated, write-storms) through both paths with ``force=True`` so
the batch engines run even on trace shapes their dispatch heuristics
would normally decline.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.cache import (
    batch_worthwhile,
    miss_rates_exact_batch,
    partition_by_set,
    refine_partition,
    simulate_lru_sets,
)
from repro.analytics.coherence import simulate_coherent_caches_batch
from repro.analytics.reuse import (
    count_earlier_leq,
    previous_occurrence,
    reuse_distance_histogram_batch,
    stack_distances,
)
from repro.analytics.sharing import (
    count_consumer_reads_batch,
    sharing_at_size_batch,
)
from repro.cpusim.cache import SharedCache
from repro.cpusim.coherence import simulate_coherent_caches_scalar
from repro.cpusim.reuse import reuse_distance_histogram_scalar
from repro.cpusim.sharing import _count_consumer_reads, sharing_at_size_scalar

_SETTINGS = dict(max_examples=60, deadline=None)


# ----------------------------------------------------------------------
# Trace strategies
# ----------------------------------------------------------------------
@st.composite
def traces(draw, max_len=400, max_lines=None):
    """A (lines, tids, writes) trace over a small address pool."""
    n = draw(st.integers(min_value=0, max_value=max_len))
    pool = draw(st.integers(min_value=1, max_value=max_lines or 80))
    lines = draw(
        st.lists(
            st.integers(min_value=0, max_value=pool - 1),
            min_size=n, max_size=n,
        )
    )
    tids = draw(
        st.lists(st.integers(min_value=0, max_value=7), min_size=n, max_size=n)
    )
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return (
        np.array(lines, dtype=np.int64),
        np.array(tids, dtype=np.int64),
        np.array(writes, dtype=bool),
    )


def _adversarial_traces():
    """Shapes that stress the engines' corner cases."""
    rng = np.random.default_rng(7)
    n = 600
    out = []
    # Every access lands in set 0 of a 16-set cache (stride = n_sets).
    same_set = (np.arange(n) % 7) * 16
    out.append(("same-set", same_set))
    # A single line repeated — one group, all hits after the first.
    out.append(("single-line", np.full(n, 42, dtype=np.int64)))
    # Two interleaved lines in one set.
    out.append(("ping-pong", np.where(np.arange(n) % 2 == 0, 5, 5 + 16)))
    # Random with heavy reuse.
    out.append(("random", rng.integers(0, 50, size=n)))
    # Streaming: no reuse at all.
    out.append(("stream", np.arange(n, dtype=np.int64)))
    return out


# ----------------------------------------------------------------------
# Reuse distance
# ----------------------------------------------------------------------
@settings(**_SETTINGS)
@given(st.lists(st.integers(min_value=-1, max_value=50), max_size=300))
def test_count_earlier_leq_matches_naive(vals):
    values = np.array(vals, dtype=np.int64)
    got = count_earlier_leq(values)
    want = np.array(
        [int((values[:i] <= v).sum()) for i, v in enumerate(vals)],
        dtype=np.int64,
    )
    assert np.array_equal(got, want)


@settings(**_SETTINGS)
@given(traces())
def test_previous_occurrence_matches_naive(trace):
    lines, _, _ = trace
    got = previous_occurrence(lines)
    last = {}
    want = np.empty(lines.size, dtype=np.int64)
    for i, v in enumerate(lines.tolist()):
        want[i] = last.get(v, -1)
        last[v] = i
    assert np.array_equal(got, want)


@settings(**_SETTINGS)
@given(traces())
def test_reuse_histogram_batch_matches_scalar(trace):
    lines, _, _ = trace
    addrs = lines * 64
    h_s, cold_s = reuse_distance_histogram_scalar(addrs)
    h_b, cold_b = reuse_distance_histogram_batch(addrs)
    assert cold_s == cold_b
    m = max(h_s.size, h_b.size)
    assert np.array_equal(
        np.pad(h_s, (0, m - h_s.size)), np.pad(h_b, (0, m - h_b.size))
    )


def test_stack_distance_identity_on_long_trace():
    rng = np.random.default_rng(3)
    lines = rng.integers(0, 500, size=5000)
    dist, prev = stack_distances(lines)
    # Warm accesses: distance == distinct lines since previous occurrence.
    for i in np.flatnonzero(prev >= 0)[::97]:
        p = int(prev[i])
        assert dist[i] == np.unique(lines[p + 1 : i]).size
    # Cold accesses are flagged through prev, one per distinct line.
    assert int((prev < 0).sum()) == np.unique(lines).size


# ----------------------------------------------------------------------
# Set-associative LRU
# ----------------------------------------------------------------------
@settings(**_SETTINGS)
@given(traces(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=32))
def test_lru_sets_matches_shared_cache(trace, assoc, n_sets):
    lines, _, _ = trace
    ref = SharedCache(n_sets * assoc * 64, assoc=assoc, line_bytes=64)
    want_hits = np.array(
        [ref.access_line(int(l)) for l in lines.tolist()], dtype=bool
    )
    part = partition_by_set(lines % n_sets)
    res = simulate_lru_sets(
        lines[part.order], part.starts, part.counts, assoc, need_hits=True
    )
    got_hits = np.empty(lines.size, dtype=bool)
    got_hits[part.order] = res.hits_sorted
    assert np.array_equal(got_hits, want_hits)
    assert int(res.miss_per_group.sum()) == ref.stats.misses
    # Final state: MRU-first way rows equal the oracle's LRU-first dicts
    # reversed.
    state = {
        int(part.set_ids[g]): [
            int(x) for x in res.ways[g, : int(res.lengths[g])]
        ]
        for g in range(part.n_groups)
        if res.lengths[g]
    }
    want_state = {
        s: list(ways)[::-1] for s, ways in ref._sets.items() if ways
    }
    assert state == want_state


@pytest.mark.parametrize("name,lines", _adversarial_traces())
def test_shared_cache_batch_adversarial(name, lines):
    addrs = np.repeat(lines, 8) * 64  # push past the batch threshold
    fast = SharedCache(16 * 4 * 64)
    hits_fast = fast.run(addrs)
    ref = SharedCache(16 * 4 * 64)
    hits_ref = np.array(
        [ref.access_line(int(l)) for l in (addrs // 64).tolist()]
    )
    assert np.array_equal(hits_fast, hits_ref), name
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(ref.stats)
    assert fast.resident_lines() == ref.resident_lines()


@settings(**_SETTINGS)
@given(traces(max_lines=200))
def test_miss_rates_sweep_matches_per_size_scalar(trace):
    lines, _, _ = trace
    addrs = lines * 64
    sizes = (256, 512, 1024, 4096)  # tiny caches: 1..16 sets at assoc 4
    got = miss_rates_exact_batch(addrs, sizes, assoc=4, force=True)
    for size in sizes:
        ref = SharedCache(size, assoc=4)
        for l in (addrs // 64).tolist():
            ref.access_line(int(l))
        assert got[size] == pytest.approx(ref.stats.miss_rate, abs=0), size


@settings(**_SETTINGS)
@given(traces(max_lines=300), st.integers(min_value=1, max_value=5))
def test_refine_partition_matches_fresh_sort(trace, doublings):
    lines, _, _ = trace
    n_sets = 4
    part = partition_by_set(lines % n_sets)
    for _ in range(doublings):
        part = refine_partition(part, (lines // n_sets) & 1, n_sets)
        n_sets *= 2
    fresh = partition_by_set(lines % n_sets)

    def groups(p):
        # Group order may differ between refine and fresh sort; only the
        # per-set access sequences (in time order) must agree.
        return {
            int(p.set_ids[g]): p.order[s : s + c].tolist()
            for g, (s, c) in enumerate(zip(p.starts, p.counts))
        }

    assert groups(part) == groups(fresh)


# ----------------------------------------------------------------------
# Sharing
# ----------------------------------------------------------------------
@settings(**_SETTINGS)
@given(traces())
def test_consumer_reads_batch_matches_scalar(trace):
    lines, tids, writes = trace
    assert count_consumer_reads_batch(lines, tids, writes) == \
        _count_consumer_reads(lines, tids, writes)


@settings(**_SETTINGS)
@given(traces(), st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=16))
def test_sharing_at_size_batch_matches_scalar(trace, assoc, n_sets):
    lines, tids, _ = trace
    got = sharing_at_size_batch(lines, tids, n_sets, assoc, force=True)
    ref = sharing_at_size_scalar(
        lines * 64, tids, n_sets * assoc * 64, assoc=assoc
    )
    assert got == (ref.shared_accesses, ref.lifetimes, ref.shared_lifetimes)


def test_sharing_at_size_batch_adversarial():
    rng = np.random.default_rng(11)
    for name, lines in _adversarial_traces():
        tids = rng.integers(0, 8, size=lines.size)
        got = sharing_at_size_batch(lines, tids, 16, 4, force=True)
        ref = sharing_at_size_scalar(lines * 64, tids, 16 * 4 * 64)
        assert got == (
            ref.shared_accesses, ref.lifetimes, ref.shared_lifetimes
        ), name


def test_sharing_batch_declines_wide_tids():
    lines = np.zeros(10, dtype=np.int64)
    tids = np.array([0] * 9 + [64], dtype=np.int64)  # beyond mask width
    assert sharing_at_size_batch(lines, tids, 4, 4, force=True) is None


# ----------------------------------------------------------------------
# Coherence
# ----------------------------------------------------------------------
@settings(**_SETTINGS)
@given(traces(), st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=8))
def test_coherence_batch_matches_scalar(trace, assoc, n_cores):
    lines, tids, writes = trace
    addrs = lines * 64 + (lines % 8) * 8  # vary the touched word too
    kwargs = dict(
        cache_bytes_per_core=8 * assoc * 64,  # 8 sets
        assoc=assoc,
        n_cores=n_cores,
    )
    got = simulate_coherent_caches_batch(
        addrs, tids, writes, force=True, **kwargs
    )
    want = simulate_coherent_caches_scalar(addrs, tids, writes, **kwargs)
    assert dataclasses.asdict(got) == dataclasses.asdict(want)


def test_coherence_batch_adversarial():
    rng = np.random.default_rng(13)
    for name, lines in _adversarial_traces():
        n = lines.size
        addrs = lines * 64 + rng.integers(0, 8, size=n) * 8
        tids = rng.integers(0, 8, size=n)
        writes = rng.random(n) < 0.5
        got = simulate_coherent_caches_batch(
            addrs, tids, writes, cache_bytes_per_core=16 * 4 * 64,
            force=True,
        )
        want = simulate_coherent_caches_scalar(
            addrs, tids, writes, cache_bytes_per_core=16 * 4 * 64
        )
        assert dataclasses.asdict(got) == dataclasses.asdict(want), name


# ----------------------------------------------------------------------
# GPU cache model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("hash_sets", [False, True])
def test_gpu_cache_batch_matches_scalar(hash_sets):
    from repro.gpusim.memory import CacheModel

    rng = np.random.default_rng(17)
    addrs = rng.integers(0, 1 << 18, size=8192) * 4
    fast = CacheModel(16 * 1024, 4, 64, hash_sets=hash_sets)
    got = fast.access(addrs)
    ref = CacheModel(16 * 1024, 4, 64, hash_sets=hash_sets)
    want = np.array([ref.access_one(int(a)) for a in addrs.tolist()])
    assert np.array_equal(got, want)
    assert (fast.hits, fast.misses) == (ref.hits, ref.misses)
    assert fast._sets == ref._sets


def test_batch_worthwhile_heuristic():
    assert not batch_worthwhile(100, np.array([10]))
    assert not batch_worthwhile(10000, np.array([10000]))  # one hot set
    assert batch_worthwhile(10000, np.full(100, 100))
