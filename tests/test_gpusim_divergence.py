"""Tests for divergence analysis and concurrent-kernel timing."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.gpusim.divergence import analyze_divergence, simd_width_sensitivity
from repro.gpusim.isa import Category
from repro.gpusim.trace import KernelTrace


def _trace_with_occupancy(active_per_warp, n_warp_insts=1000):
    tr = KernelTrace("synthetic")
    lt = tr.new_launch("k", (64, 1), (256, 1), 16)
    lt.charge_warps(
        Category.ALU,
        np.array(active_per_warp, dtype=np.int64),
        repeat=n_warp_insts,
    )
    return tr


class TestDivergenceStats:
    def test_full_warps_are_perfectly_efficient(self):
        stats = analyze_divergence(_trace_with_occupancy([32] * 8))
        assert stats.simd_efficiency == pytest.approx(1.0)
        assert stats.frac_warps_underfilled == 0.0
        assert stats.divergence_speedup_bound == pytest.approx(1.0, abs=0.02)

    def test_half_filled_warps(self):
        stats = analyze_divergence(_trace_with_occupancy([16] * 8))
        assert stats.simd_efficiency == pytest.approx(0.5)
        assert stats.frac_warps_underfilled == 1.0

    def test_packing_bound_for_compute_kernel(self):
        # A compute-bound kernel at 25% efficiency could run ~4x faster
        # with perfect reconvergence.
        stats = analyze_divergence(_trace_with_occupancy([8] * 8, 50_000))
        assert 2.0 < stats.divergence_speedup_bound <= 4.5

    def test_memory_bound_kernel_gains_nothing(self):
        tr = _trace_with_occupancy([8] * 8, 100)
        lt = tr.launches[0]
        addrs = np.arange(200_000, dtype=np.int64) * 64
        lt.record_transactions(addrs, 0, False)
        stats = analyze_divergence(tr)
        # Packing warps cannot reduce DRAM traffic.
        assert stats.divergence_speedup_bound == pytest.approx(1.0, abs=0.02)

    def test_empty_trace(self):
        stats = analyze_divergence(KernelTrace("empty"))
        assert stats.simd_efficiency == 1.0

    def test_real_workload_direction(self):
        """BFS (divergent) must show lower SIMD efficiency than CFD."""
        from repro.workloads import get
        g1, g2 = GPU(), GPU()
        get("bfs").gpu_fn(g1, SimScale.TINY)
        get("cfd").gpu_fn(g2, SimScale.TINY)
        s_bfs = analyze_divergence(g1.trace)
        s_cfd = analyze_divergence(g2.trace)
        assert s_bfs.simd_efficiency < s_cfd.simd_efficiency


class TestSimdWidthSensitivity:
    def test_compute_kernel_scales_with_width(self):
        tr = _trace_with_occupancy([32] * 8, 10_000)
        res = simd_width_sensitivity(tr)
        assert res[32].ipc > res[16].ipc > res[8].ipc

    def test_returns_requested_widths(self):
        res = simd_width_sensitivity(_trace_with_occupancy([32] * 8),
                                     widths=(8, 64))
        assert set(res) == {8, 64}


class TestConcurrentTiming:
    def _compute(self):
        # Sized so the issue demand roughly matches _memory's channel
        # demand — the best case for co-scheduling.
        return _trace_with_occupancy([32] * 8, 145_000)

    def _memory(self):
        tr = _trace_with_occupancy([32] * 8, 10)
        tr.launches[0].record_transactions(
            np.arange(100_000, dtype=np.int64) * 64, 0, False)
        return tr

    def test_complementary_pair_overlaps(self):
        model = TimingModel(GPUConfig.sim_default())
        co = model.time_concurrent([self._compute(), self._memory()])
        assert co.speedup > 1.7

    def test_same_resource_pair_does_not(self):
        model = TimingModel(GPUConfig.sim_default())
        co = model.time_concurrent([self._memory(), self._memory()])
        assert co.speedup < 1.2

    def test_speedup_bounded_by_two(self):
        model = TimingModel(GPUConfig.sim_default())
        co = model.time_concurrent([self._compute(), self._memory()])
        assert co.speedup <= 2.01

    def test_never_slower_than_slowest_member(self):
        model = TimingModel(GPUConfig.sim_default())
        singles = [model.time(t).cycles
                   for t in (self._compute(), self._memory())]
        co = model.time_concurrent([self._compute(), self._memory()])
        assert co.concurrent_cycles >= max(singles) * 0.99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(GPUConfig.sim_default()).time_concurrent([])
