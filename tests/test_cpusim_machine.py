"""Tests for the instrumented machine, thread contexts, and trace merge."""

import numpy as np
import pytest

from repro.cpusim import Machine


class TestMemoryOps:
    def test_load_store_roundtrip(self):
        m = Machine(n_threads=2)
        a = m.array(np.arange(10.0))
        b = m.alloc(10)

        def w(t):
            v = t.load(a, np.arange(10))
            t.store(b, np.arange(10), v * 2)

        m.serial(w)
        np.testing.assert_allclose(b.data, np.arange(10) * 2)

    def test_scalar_index(self):
        m = Machine()
        a = m.array(np.array([5.0, 7.0]))

        def w(t):
            assert t.load(a, 1) == 7.0
            t.store(a, 0, 9.0)

        m.serial(w)
        assert a.data[0] == 9.0

    def test_out_of_bounds(self):
        m = Machine()
        a = m.alloc(4)

        def w(t):
            t.load(a, 10)

        with pytest.raises(IndexError):
            m.serial(w)

    def test_update_rmw(self):
        m = Machine()
        a = m.array(np.array([1.0, 2.0]))

        def w(t):
            t.update(a, np.array([0, 1]), lambda v: v + 10)

        m.serial(w)
        np.testing.assert_allclose(a.data, [11.0, 12.0])
        assert m.counts.load == 2 and m.counts.store == 2

    def test_2d_array_flat_addressing(self):
        m = Machine()
        a = m.array(np.zeros((4, 4)))

        def w(t):
            t.store(a, 5, 3.0)   # row 1, col 1

        m.serial(w)
        assert a.data[1, 1] == 3.0


class TestPartitioning:
    def test_chunk_covers_range(self):
        m = Machine(n_threads=3)
        seen = []

        def w(t):
            seen.extend(t.chunk(10))

        m.parallel(w)
        assert sorted(seen) == list(range(10))

    def test_strided_covers_range(self):
        m = Machine(n_threads=3)
        seen = []

        def w(t):
            seen.extend(t.strided(10))

        m.parallel(w)
        assert sorted(seen) == list(range(10))

    def test_parallel_returns_results(self):
        m = Machine(n_threads=4)
        out = m.parallel(lambda t: t.tid * 10)
        assert out == [0, 10, 20, 30]


class TestTraceMerge:
    def test_counts_accumulate(self):
        m = Machine(n_threads=2)
        a = m.alloc(100)

        def w(t):
            t.load(a, np.arange(50))
            t.alu(7)
            t.branch(3)

        m.parallel(w)
        assert m.counts.load == 100
        assert m.counts.alu == 14
        assert m.counts.branch == 6

    def test_round_robin_interleave(self):
        m = Machine(n_threads=2, quantum=4)
        a = m.alloc(64)

        def w(t):
            base = t.tid * 32
            for i in range(8):
                t.load(a, base + i)

        m.parallel(w)
        addrs, tids, writes = m.trace()
        # First quantum from tid 0, second from tid 1, alternating.
        assert tids[:4].tolist() == [0] * 4
        assert tids[4:8].tolist() == [1] * 4
        assert tids[8:12].tolist() == [0] * 4

    def test_single_thread_region_skips_interleave(self):
        m = Machine(n_threads=4)
        a = m.alloc(8)
        m.serial(lambda t: t.load(a, np.arange(8)))
        addrs, tids, writes = m.trace()
        assert (tids == 0).all()
        assert addrs.size == 8

    def test_footprint_pages(self):
        m = Machine()
        a = m.alloc(4096, dtype=np.int8)   # exactly one page if aligned

        def w(t):
            t.load(a, np.arange(4096))

        m.serial(w)
        assert m.data_footprint_pages() in (1, 2)  # alignment-dependent

    def test_trace_cache_invalidation(self):
        m = Machine()
        a = m.alloc(4)
        m.serial(lambda t: t.load(a, 0))
        assert m.n_accesses == 1
        m.serial(lambda t: t.load(a, 1))
        assert m.n_accesses == 2

    def test_write_flags(self):
        m = Machine()
        a = m.alloc(4)

        def w(t):
            t.load(a, 0)
            t.store(a, 1, 1.0)

        m.serial(w)
        _, _, writes = m.trace()
        assert writes.tolist() == [False, True]


class TestMixFractions:
    def test_mix_sums_to_one(self):
        m = Machine()
        a = m.alloc(4)

        def w(t):
            t.load(a, 0)
            t.alu(2)
            t.branch(1)

        m.serial(w)
        assert sum(m.counts.mix().values()) == pytest.approx(1.0)
