"""Tests for the Ukkonen suffix tree (MUMmer's substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.rodinia.suffixtree import (
    SIGMA,
    FlatSuffixTree,
    SuffixTree,
    flat_match_length,
)


def _brute_match_length(seq, pattern):
    s = bytes(int(c) for c in seq)
    for length in range(len(pattern), 0, -1):
        if s.find(bytes(int(c) for c in pattern[:length])) >= 0:
            return length
    return 0


class TestConstruction:
    def test_all_suffixes_present(self):
        seq = np.array([0, 1, 2, 0, 1, 3, 2, 1], dtype=np.int8)
        tree = SuffixTree(seq)
        for i in range(len(seq)):
            assert tree.contains(seq[i:]), f"suffix {i} missing"

    def test_absent_patterns_rejected(self):
        seq = np.array([0, 0, 0, 0], dtype=np.int8)
        tree = SuffixTree(seq)
        assert not tree.contains(np.array([1], dtype=np.int8))
        assert tree.match_length(np.array([0, 0, 1], dtype=np.int8)) == 2

    def test_single_char(self):
        tree = SuffixTree(np.array([2], dtype=np.int8))
        assert tree.contains(np.array([2], dtype=np.int8))
        assert not tree.contains(np.array([3], dtype=np.int8))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=120),
        st.lists(st.integers(0, 3), min_size=1, max_size=20),
    )
    def test_match_length_matches_brute_force(self, seq_l, pat_l):
        seq = np.array(seq_l, dtype=np.int8)
        pat = np.array(pat_l, dtype=np.int8)
        tree = SuffixTree(seq)
        assert tree.match_length(pat) == _brute_match_length(seq, pat)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=100),
           st.data())
    def test_embedded_reads_fully_match(self, seq_l, data):
        seq = np.array(seq_l, dtype=np.int8)
        lo = data.draw(st.integers(0, len(seq_l) - 1))
        hi = data.draw(st.integers(lo + 1, len(seq_l)))
        assert SuffixTree(seq).contains(seq[lo:hi])


class TestFlattening:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=100),
        st.lists(st.integers(0, 3), min_size=1, max_size=20),
    )
    def test_flat_walk_equals_object_walk(self, seq_l, pat_l):
        seq = np.array(seq_l, dtype=np.int8)
        pat = np.array(pat_l, dtype=np.int8)
        tree = SuffixTree(seq)
        flat = tree.flatten()
        assert flat_match_length(flat, pat) == tree.match_length(pat)

    def test_flat_arrays_consistent(self):
        seq = np.array([0, 1, 2, 3, 0, 1], dtype=np.int8)
        flat = SuffixTree(seq).flatten()
        n = flat.n_nodes
        assert flat.children.size == n * SIGMA
        # Edges reference valid text slices.
        for node in range(1, n):
            start = flat.edge_start[node]
            length = flat.edge_len[node]
            assert length >= 1
            assert 0 <= start and start + length <= flat.text.size
        # Every non-root node is some node's child exactly once.
        children = flat.children[flat.children > 0]
        assert sorted(children.tolist()) == list(range(1, n))

    def test_node_count_linear(self):
        # Ukkonen guarantees at most 2n nodes.
        rng = np.random.default_rng(0)
        seq = rng.integers(0, 4, 500).astype(np.int8)
        flat = SuffixTree(seq).flatten()
        assert flat.n_nodes <= 2 * (seq.size + 1)
