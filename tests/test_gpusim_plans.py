"""Traced launch plans: replay bit-identity, routing, and persistence.

The plan path (:mod:`repro.gpusim.plans`) must be invisible to every
observable of a run: traces, device results, profiler counter sets, and
the ``gpusim.batch.*`` telemetry contract are all bit-identical whether
a launch is interpreted (scalar oracle), batch-interpreted, traced, or
replayed.  Routing is observable only through the ``PLAN_ROUTES`` probe
and the ``gpusim.plan.*`` counter family.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.common.config import SimScale, override
from repro.core import artifacts
from repro.gpusim import (
    BLOCK_BATCHES,
    GPU,
    GPUConfig,
    PLAN_ROUTES,
    TimingModel,
    clear_plans,
    profile_trace,
)
from repro.gpusim.plans import SESSION_CAP  # noqa: F401  (re-export check)
from repro.workloads import base as wl
from tests.test_gpusim_batch_equivalence import (
    assert_trace_equal,
    _flatten_result,
)

wl.load_all()
GPU_WORKLOADS = sorted(n for n, d in wl.REGISTRY.items() if d.has_gpu)


@pytest.fixture(autouse=True)
def _fresh_plan_state():
    clear_plans()
    del PLAN_ROUTES[:]
    del BLOCK_BATCHES[:]
    # This suite tests the plan layer itself, so it pins both engine
    # toggles on regardless of the ambient REPRO_GPU_* environment
    # (CI runs tier-1 with REPRO_GPU_PLAN=off too); tests that need a
    # different routing nest their own override.
    with override(gpu_batch=True, gpu_plan=True):
        yield
    clear_plans()


@contextlib.contextmanager
def _plan_cache(cache):
    """Temporarily replace the artifact cache (None = session-only)."""
    prev = artifacts.get_artifact_cache()
    artifacts.set_artifact_cache(cache)
    try:
        yield cache
    finally:
        artifacts.set_artifact_cache(prev)


def _run_workload(name, scale, *, plan, batch=True):
    with override(gpu_batch=batch, gpu_plan=plan):
        gpu = GPU(app_name=name)
        result = wl.get(name).gpu_fn(gpu, scale)
    return gpu.trace, _flatten_result(result)


def _assert_results_equal(a, b, label):
    assert len(a) == len(b), label
    for u, v in zip(a, b):
        np.testing.assert_array_equal(u, v, err_msg=label)


def _counters_of(trace):
    return profile_trace(trace, TimingModel(GPUConfig.sim_default())).counters


# ----------------------------------------------------------------------
# Rodinia: replay vs interpret vs oracle
# ----------------------------------------------------------------------
class TestRodiniaPlanEquivalence:
    @pytest.mark.parametrize("name", GPU_WORKLOADS)
    def test_tiny_three_way_bit_identical(self, name, tmp_path):
        """Cold (trace) and warm (replay) runs match the scalar oracle."""
        with _plan_cache(artifacts.ArtifactCache(tmp_path)):
            t_cold, r_cold = _run_workload(name, SimScale.TINY, plan=True)
            t_warm, r_warm = _run_workload(name, SimScale.TINY, plan=True)
        t_scalar, r_scalar = _run_workload(
            name, SimScale.TINY, plan=False, batch=False
        )
        assert_trace_equal(t_cold, t_scalar, f"{name} cold")
        assert_trace_equal(t_warm, t_scalar, f"{name} warm")
        _assert_results_equal(r_cold, r_scalar, name)
        _assert_results_equal(r_warm, r_scalar, name)
        assert _counters_of(t_warm) == _counters_of(t_scalar), name

    @pytest.mark.parametrize("name", ["hotspot", "srad"])
    def test_small_launch_heavy_replay(self, name, tmp_path):
        """The launch-heavy workloads replay at SMALL with identical
        traces, results, and profiler counter sets across all routes."""
        with _plan_cache(artifacts.ArtifactCache(tmp_path)):
            t_cold, _ = _run_workload(name, SimScale.SMALL, plan=True)
            del PLAN_ROUTES[:]
            t_warm, r_warm = _run_workload(name, SimScale.SMALL, plan=True)
            warm_routes = {route for _, route, _ in PLAN_ROUTES}
        assert warm_routes == {"replay"}, PLAN_ROUTES
        t_batch, r_batch = _run_workload(name, SimScale.SMALL, plan=False)
        t_scalar, r_scalar = _run_workload(
            name, SimScale.SMALL, plan=False, batch=False
        )
        assert_trace_equal(t_cold, t_scalar, f"{name} cold")
        assert_trace_equal(t_warm, t_scalar, f"{name} warm")
        assert_trace_equal(t_batch, t_scalar, f"{name} batch")
        _assert_results_equal(r_warm, r_scalar, name)
        _assert_results_equal(r_batch, r_scalar, name)
        cs = _counters_of(t_scalar)
        assert _counters_of(t_warm) == cs, name
        assert _counters_of(t_batch) == cs, name


# ----------------------------------------------------------------------
# Routing probe and counters
# ----------------------------------------------------------------------
def _saxpy_kernel(ctx, a, out, s):
    i = ctx.gtid
    with ctx.masked(i < out.size):
        v = ctx.load(a, i)
        ctx.store(out, i, v * s + 1.0)


def _masked_on_data_kernel(ctx, a, out):
    i = ctx.gtid
    v = ctx.load(a, i % a.size)
    with ctx.masked(v > 0):  # data-dependent mask: untraceable
        ctx.store(out, i % out.size, v)


class TestRouting:
    def test_trace_then_replay_routes(self):
        with _plan_cache(None):
            gpu = GPU()
            a = gpu.to_device(np.arange(64, dtype=np.float32))
            out = gpu.alloc(64, dtype=np.float32)
            gpu.launch(_saxpy_kernel, 2, 32, a, out, 2.0)
            gpu.launch(_saxpy_kernel, 2, 32, a, out, 3.0)
        assert [r for _, r, _ in PLAN_ROUTES] == ["trace", "replay"]
        # Both launches are "the batched engine" to every existing probe.
        assert [e[1] for e in BLOCK_BATCHES] == ["batched", "batched"]
        np.testing.assert_array_equal(
            out.to_host(), np.arange(64, dtype=np.float32) * 3.0 + 1.0
        )

    def test_symbolic_scalar_not_baked(self):
        """A scalar used only in arithmetic binds per replay (one plan)."""
        with _plan_cache(None):
            telemetry.start()
            gpu = GPU()
            a = gpu.to_device(np.ones(32, dtype=np.float64))
            out = gpu.alloc(32, dtype=np.float64)
            for s in (1.5, 2.5, -3.0):
                gpu.launch(_saxpy_kernel, 1, 32, a, out, s)
                np.testing.assert_array_equal(out.to_host(), s + 1.0)
            c = telemetry.counters()
            telemetry.stop()
        assert [r for _, r, _ in PLAN_ROUTES] == ["trace", "replay", "replay"]
        assert c["gpusim.plan.launches.traced"] == 1
        assert c["gpusim.plan.launches.replayed"] == 2
        assert c["gpusim.plan.route._saxpy_kernel.replay"] == 2

    def test_unplannable_kernel_routes_to_batch(self):
        with _plan_cache(None):
            gpu = GPU()
            a = gpu.to_device(np.linspace(-1, 1, 64, dtype=np.float32))
            out = gpu.alloc(64, dtype=np.float32)
            gpu.launch(_masked_on_data_kernel, 2, 32, a, out)
            gpu.launch(_masked_on_data_kernel, 2, 32, a, out)
        assert [r for _, r, _ in PLAN_ROUTES] == ["batch", "batch"]
        assert [e[1] for e in BLOCK_BATCHES] == ["batched", "batched"]

    def test_plan_off_records_nothing(self):
        with override(gpu_plan=False):
            gpu = GPU()
            a = gpu.to_device(np.ones(32, dtype=np.float32))
            out = gpu.alloc(32, dtype=np.float32)
            gpu.launch(_saxpy_kernel, 1, 32, a, out, 2.0)
        assert PLAN_ROUTES == []
        assert [e[1] for e in BLOCK_BATCHES] == ["batched"]

    def test_route_counters_in_summary(self):
        with _plan_cache(None):
            telemetry.start()
            gpu = GPU()
            a = gpu.to_device(np.ones(32, dtype=np.float32))
            out = gpu.alloc(32, dtype=np.float32)
            gpu.launch(_saxpy_kernel, 1, 32, a, out, 2.0)
            gpu.launch(_saxpy_kernel, 1, 32, a, out, 2.0)
            rendered = "\n".join(t.render() for t in telemetry.summary())
            telemetry.stop()
        assert "gpusim.plan.route._saxpy_kernel.replay" in rendered


# ----------------------------------------------------------------------
# Scalar baking and variants
# ----------------------------------------------------------------------
def _strided_fill_kernel(ctx, out, n):
    i = ctx.gtid
    for _ in ctx.range_(n):  # trip count shapes the trace: n is baked
        ctx.alu(1)
    with ctx.masked(i < out.size):
        ctx.store(out, i, ctx.const(ctx.bidx, np.int64))


class TestBaking:
    def test_baked_trip_count_variants(self):
        """Different trip counts trace separate variants; both replay."""
        with _plan_cache(None):
            gpu = GPU()
            out = gpu.alloc(64, dtype=np.int64)
            for n in (4, 2, 4, 2):
                gpu.launch(_strided_fill_kernel, 2, 32, out, n)
        assert [r for _, r, _ in PLAN_ROUTES] == [
            "trace", "trace", "replay", "replay"
        ]
        # Accounting must reflect each variant's own trip count.
        with override(gpu_batch=False):
            oracle = GPU()
            out2 = oracle.alloc(64, dtype=np.int64)
            for n in (4, 2, 4, 2):
                oracle.launch(_strided_fill_kernel, 2, 32, out2, n)
        assert_trace_equal(gpu.trace, oracle.trace, "baked variants")

    def test_float32_weak_promotion_preserved(self):
        """Python-float constants stay weak under replay (NEP 50)."""
        with _plan_cache(None):
            gpu = GPU()
            a = gpu.to_device(np.full(32, 2.0, dtype=np.float32))
            out = gpu.alloc(32, dtype=np.float32)
            gpu.launch(_saxpy_kernel, 1, 32, a, out, 0.5)
            first = out.to_host().copy()
            gpu.launch(_saxpy_kernel, 1, 32, a, out, 0.5)
        assert [r for _, r, _ in PLAN_ROUTES] == ["trace", "replay"]
        np.testing.assert_array_equal(out.to_host(), first)
        with override(gpu_batch=False):
            oracle = GPU()
            a2 = oracle.to_device(np.full(32, 2.0, dtype=np.float32))
            out2 = oracle.alloc(32, dtype=np.float32)
            oracle.launch(_saxpy_kernel, 1, 32, a2, out2, 0.5)
        np.testing.assert_array_equal(first, out2.to_host())


# ----------------------------------------------------------------------
# Guards: mid-sequence divergence and invalidation
# ----------------------------------------------------------------------
def _guarded_kernel(ctx, a, out, smem_unused):
    sm = ctx.shared((ctx.nthreads,), np.float64)
    v = ctx.load(a, ctx.tidx)
    total = ctx.block_reduce_sum(v.astype(np.float64), sm)
    if total > 0:  # host branch on device data: recorded as a guard
        with ctx.masked(ctx.tidx < out.size):
            ctx.store(out, ctx.tidx, ctx.const(1.0))
    else:
        with ctx.masked(ctx.tidx < out.size):
            ctx.store(out, ctx.tidx, ctx.const(-1.0))


class TestGuards:
    def test_mid_sequence_invalidation(self):
        """A replay whose guard flips diverges, rolls back, and re-routes
        to the batched engine with a correct trace and result."""
        with _plan_cache(None):
            telemetry.start()
            gpu = GPU()
            a = gpu.to_device(np.ones(32, dtype=np.float64))
            out = gpu.alloc(32, dtype=np.float64)
            dummy = gpu.alloc(4, dtype=np.float64)
            gpu.launch(_guarded_kernel, 1, 32, a, out, dummy)
            gpu.launch(_guarded_kernel, 1, 32, a, out, dummy)
            np.testing.assert_array_equal(out.to_host(), 1.0)
            a.data[...] = -1.0  # flip the branch mid-sequence
            gpu.launch(_guarded_kernel, 1, 32, a, out, dummy)
            c = telemetry.counters()
            telemetry.stop()
            np.testing.assert_array_equal(out.to_host(), -1.0)
        assert [r for _, r, _ in PLAN_ROUTES] == ["trace", "replay", "batch"]
        assert c["gpusim.plan.invalidated"] == 1
        # Trace must match an oracle run of the same launch sequence.
        with override(gpu_batch=False):
            oracle = GPU()
            a2 = oracle.to_device(np.ones(32, dtype=np.float64))
            out2 = oracle.alloc(32, dtype=np.float64)
            dummy2 = oracle.alloc(4, dtype=np.float64)
            oracle.launch(_guarded_kernel, 1, 32, a2, out2, dummy2)
            oracle.launch(_guarded_kernel, 1, 32, a2, out2, dummy2)
            a2.data[...] = -1.0
            oracle.launch(_guarded_kernel, 1, 32, a2, out2, dummy2)
        assert_trace_equal(gpu.trace, oracle.trace, "guard sequence")

    def test_divergence_rolls_back_device_writes(self):
        with _plan_cache(None):
            gpu = GPU()
            a = gpu.to_device(np.ones(32, dtype=np.float64))
            out = gpu.alloc(32, dtype=np.float64)
            dummy = gpu.alloc(4, dtype=np.float64)
            gpu.launch(_guarded_kernel, 1, 32, a, out, dummy)
            a.data[...] = -1.0
            gpu.launch(_guarded_kernel, 1, 32, a, out, dummy)
            # The diverged replay's partial stores must not leak: the
            # re-run wrote the branch the live data selects.
            np.testing.assert_array_equal(out.to_host(), -1.0)


# ----------------------------------------------------------------------
# Persistence: artifact cache, budgets, --no-cache
# ----------------------------------------------------------------------
class TestPersistence:
    def test_disk_roundtrip_replays_cold_process(self, tmp_path):
        """A fresh session (cleared LRU) replays from the persisted npz."""
        with _plan_cache(artifacts.ArtifactCache(tmp_path)):
            _run_workload("hotspot", SimScale.TINY, plan=True)
            files = list(tmp_path.glob("plan-hotspot_tile-*.npz"))
            assert files, "plans were not persisted"
            clear_plans()  # simulate a new process over the same cache
            del PLAN_ROUTES[:]
            t_warm, _ = _run_workload("hotspot", SimScale.TINY, plan=True)
            assert {r for _, r, _ in PLAN_ROUTES} == {"replay"}
        t_scalar, _ = _run_workload(
            "hotspot", SimScale.TINY, plan=False, batch=False
        )
        assert_trace_equal(t_warm, t_scalar, "disk roundtrip")

    def test_corrupt_plan_file_retraces(self, tmp_path):
        cache = artifacts.ArtifactCache(tmp_path)
        with _plan_cache(cache):
            gpu = GPU()
            a = gpu.to_device(np.ones(32, dtype=np.float32))
            out = gpu.alloc(32, dtype=np.float32)
            gpu.launch(_saxpy_kernel, 1, 32, a, out, 2.0)
            (path,) = tmp_path.glob("plan-_saxpy_kernel-*.npz")
            path.write_bytes(b"not an npz")
            clear_plans()
            del PLAN_ROUTES[:]
            gpu2 = GPU()
            a2 = gpu2.to_device(np.ones(32, dtype=np.float32))
            out2 = gpu2.alloc(32, dtype=np.float32)
            gpu2.launch(_saxpy_kernel, 1, 32, a2, out2, 2.0)
            assert [r for _, r, _ in PLAN_ROUTES] == ["trace"]
            np.testing.assert_array_equal(out2.to_host(), 3.0)

    def test_no_cache_keeps_plans_session_only(self, tmp_path):
        with _plan_cache(None):  # runner --no-cache
            _run_workload("hotspot", SimScale.TINY, plan=True)
            del PLAN_ROUTES[:]
            _run_workload("hotspot", SimScale.TINY, plan=True)
            assert {r for _, r, _ in PLAN_ROUTES} == {"replay"}
        assert list(tmp_path.glob("plan-*.npz")) == []

    def test_prune_entry_budget_is_lru(self, tmp_path):
        import time

        cache = artifacts.ArtifactCache(tmp_path)
        for i in range(4):
            cache.put_plan_file(f"k{i}", "0" * 16,
                               lambda tmp: open(tmp, "wb").write(b"x" * 64))
            time.sleep(0.01)
        assert cache.prune_plans(max_entries=2) == 2
        kept = sorted(p.name for p in tmp_path.glob("plan-*.npz"))
        assert kept == [f"plan-k2-{'0' * 16}.npz", f"plan-k3-{'0' * 16}.npz"]

    def test_prune_byte_budget_keeps_newest(self, tmp_path):
        import time

        cache = artifacts.ArtifactCache(tmp_path)
        for i in range(3):
            cache.put_plan_file(f"b{i}", "1" * 16,
                               lambda tmp: open(tmp, "wb").write(b"x" * 100))
            time.sleep(0.01)
        # Budget fits one file: newest survives even though it alone
        # busts the budget check for subsequent entries.
        assert cache.prune_plans(max_entries=10, max_bytes=150) == 2
        kept = [p.name for p in tmp_path.glob("plan-*.npz")]
        assert kept == [f"plan-b2-{'1' * 16}.npz"]

    def test_session_lru_bounded(self, monkeypatch):
        from repro.gpusim import plans

        monkeypatch.setattr(plans, "SESSION_CAP", 2)
        for i in range(4):
            plans._session_put(f"key{i}", plans.PlanSet(f"k{i}", ()))
        assert list(plans._session) == ["key2", "key3"]


# ----------------------------------------------------------------------
# Hypothesis: synthetic kernels, replay == oracle
# ----------------------------------------------------------------------
def _make_synth_kernel(use_reduce: bool, use_where: bool):
    def k(ctx, a, out, s):
        i = ctx.gtid % a.size
        v = ctx.load(a, i)
        w = v * s + 0.25
        if use_where:
            w = np.where(ctx.mask, w, 0.0)
        if use_reduce:
            sm = ctx.shared((ctx.nthreads,), np.float64)
            total = ctx.block_reduce_sum(w.astype(np.float64), sm)
            with ctx.masked(ctx.tidx == 0):
                ctx.store(out, ctx.const(ctx.bidx, np.int64), total)
        else:
            with ctx.masked(i < out.size):
                ctx.store(out, i, w)

    return k


class TestPlanProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        threads=st.sampled_from([8, 32, 48]),
        blocks=st.integers(min_value=1, max_value=4),
        use_reduce=st.booleans(),
        use_where=st.booleans(),
        scale=st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_replay_matches_oracle(self, threads, blocks, use_reduce,
                                   use_where, scale, seed):
        clear_plans()
        rng = np.random.default_rng(seed)
        data = rng.uniform(-1, 1, threads * blocks)
        fresh = rng.uniform(-1, 1, threads * blocks)
        kernel = _make_synth_kernel(use_reduce, use_where)

        def run(plan, batch=True):
            with override(gpu_batch=batch, gpu_plan=plan):
                gpu = GPU()
                a = gpu.to_device(data.copy())
                out = gpu.alloc(max(blocks, threads * blocks),
                                dtype=np.float64)
                gpu.launch(kernel, blocks, threads, a, out, scale)
                gpu.launch(kernel, blocks, threads, a, out, scale)
                a.data[...] = fresh  # replay must read live device data
                gpu.launch(kernel, blocks, threads, a, out, scale)
                return gpu.trace, out.to_host()

        with _plan_cache(None):
            t_plan, r_plan = run(plan=True)
        t_scalar, r_scalar = run(plan=False, batch=False)
        assert_trace_equal(t_plan, t_scalar, "synthetic")
        np.testing.assert_array_equal(r_plan, r_scalar)
        assert _counters_of(t_plan) == _counters_of(t_scalar)
