"""Tests for cache simulation, reuse distance, sharing, and footprints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpusim.cache import (
    PAPER_CACHE_SIZES,
    SharedCache,
    miss_rates_exact,
    simulate_shared_cache,
)
from repro.cpusim.reuse import miss_rate_curve, reuse_distance_histogram
from repro.cpusim.sharing import analyze_sharing


class TestSharedCache:
    def test_streaming_miss_rate(self):
        addrs = np.arange(10000) * 8  # 8 doubles per 64B line
        stats = simulate_shared_cache(addrs, 128 * 1024)
        assert stats.miss_rate == pytest.approx(1 / 8, rel=0.01)

    def test_resident_fits(self):
        addrs = np.tile(np.arange(64) * 64, 100)
        stats = simulate_shared_cache(addrs, 128 * 1024)
        # Only cold misses.
        assert stats.misses == 64
        assert stats.cold_misses == 64

    def test_thrash_when_oversized(self):
        n_lines = 4096  # 256 kB footprint > 128 kB cache, cyclic access
        addrs = np.tile(np.arange(n_lines) * 64, 4)
        stats = simulate_shared_cache(addrs, 128 * 1024)
        assert stats.miss_rate > 0.9

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            SharedCache(64, assoc=4, line_bytes=64)

    def test_miss_rates_monotone_in_size(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 22, 5000) // 64 * 64
        rates = miss_rates_exact(addrs, PAPER_CACHE_SIZES[:5])
        vals = list(rates.values())
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))


def _naive_reuse(lines):
    """O(n^2) stack distances."""
    hist = {}
    cold = 0
    last = {}
    for t, ln in enumerate(lines):
        if ln in last:
            d = len(set(lines[last[ln] + 1 : t]))
            hist[d] = hist.get(d, 0) + 1
        else:
            cold += 1
        last[ln] = t
    return hist, cold


class TestReuseDistance:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=200))
    def test_matches_naive(self, lines):
        addrs = np.array(lines, dtype=np.int64) * 64
        hist, cold = reuse_distance_histogram(addrs)
        ref_hist, ref_cold = _naive_reuse(lines)
        assert cold == ref_cold
        got = {d: int(c) for d, c in enumerate(hist) if c}
        assert got == ref_hist

    def test_curve_matches_fully_associative_sim(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 18, 4000) // 64 * 64
        curve = miss_rate_curve(addrs, sizes=(128 * 1024,))
        # Fully-associative exact simulation: assoc == n_lines.
        n_lines = 128 * 1024 // 64
        stats = simulate_shared_cache(addrs, 128 * 1024, assoc=n_lines)
        assert curve[128 * 1024] == pytest.approx(stats.miss_rate, abs=1e-12)

    def test_curve_monotone(self):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 21, 20000) // 64 * 64
        curve = miss_rate_curve(addrs)
        vals = [curve[s] for s in PAPER_CACHE_SIZES]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_empty_trace(self):
        curve = miss_rate_curve(np.empty(0, dtype=np.int64))
        assert all(v == 0.0 for v in curve.values())

    def test_close_approximation_of_4way(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 20, 30000) // 8 * 8
        curve = miss_rate_curve(addrs, sizes=(512 * 1024,))
        exact = simulate_shared_cache(addrs, 512 * 1024, assoc=4).miss_rate
        assert curve[512 * 1024] == pytest.approx(exact, abs=0.02)


class TestSharing:
    def _trace(self, triples):
        a = np.array([t[0] for t in triples], dtype=np.int64)
        t = np.array([t[1] for t in triples], dtype=np.int16)
        w = np.array([t[2] for t in triples], dtype=bool)
        return a, t, w

    def test_private_lines(self):
        a, t, w = self._trace([(0, 0, False), (64, 1, False)])
        s = analyze_sharing(a, t, w)
        assert s.shared_lines == 0
        assert s.shared_access_ratio == 0.0

    def test_shared_line_detected(self):
        a, t, w = self._trace([(0, 0, False), (8, 1, False), (64, 0, False)])
        s = analyze_sharing(a, t, w)
        assert s.total_lines == 2
        assert s.shared_lines == 1
        assert s.shared_access_ratio == pytest.approx(2 / 3)

    def test_consumer_reads(self):
        a, t, w = self._trace([
            (0, 0, True),    # t0 writes line 0
            (0, 1, False),   # t1 reads it -> communication
            (0, 0, False),   # producer reads own data -> not counted
        ])
        s = analyze_sharing(a, t, w)
        assert s.consumer_reads == 1

    def test_write_shared(self):
        a, t, w = self._trace([(0, 0, True), (0, 1, False), (64, 0, True)])
        s = analyze_sharing(a, t, w)
        assert s.write_shared_lines == 1

    def test_empty(self):
        s = analyze_sharing(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int16),
            np.empty(0, dtype=bool),
        )
        assert s.frac_lines_shared == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 600), st.integers(0, 3), st.booleans()),
        min_size=1, max_size=200,
    ))
    def test_invariants(self, triples):
        a, t, w = self._trace([(x * 16, tid, wr) for x, tid, wr in triples])
        s = analyze_sharing(a, t, w)
        assert 0 <= s.shared_lines <= s.total_lines
        assert 0 <= s.shared_accesses <= s.total_accesses
        assert 0.0 <= s.frac_lines_shared <= 1.0
        assert 0.0 <= s.shared_access_ratio <= 1.0
        assert s.mean_sharers >= 1.0
