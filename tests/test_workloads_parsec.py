"""End-to-end tests of every Parsec workload."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.workloads import base as wl

wl.load_all()
PARSEC = [d.meta.name for d in wl.all_parsec()]


@pytest.mark.parametrize("name", PARSEC)
def test_cpu_implementation_correct(name):
    defn = wl.get(name)
    machine = Machine()
    result = defn.cpu_fn(machine, SimScale.TINY)
    defn.check_cpu(result, SimScale.TINY)
    assert machine.n_accesses > 0


@pytest.mark.parametrize("name", PARSEC)
def test_trace_budget_reasonable(name):
    """SMALL-scale traces stay small enough for the reuse-distance pass."""
    defn = wl.get(name)
    machine = Machine()
    defn.cpu_fn(machine, SimScale.TINY)
    assert machine.n_accesses < 2_000_000


class TestRegistry:
    def test_thirteen_parsec_workloads(self):
        assert len(PARSEC) == 13

    def test_table5_names(self):
        expected = {
            "blackscholes", "bodytrack", "canneal", "dedup", "facesim",
            "ferret", "fluidanimate", "freqmine", "raytrace",
            "streamcluster_p", "swaptions", "vips", "x264",
        }
        assert set(PARSEC) == expected

    def test_no_gpu_implementations(self):
        for d in wl.all_parsec():
            assert d.gpu_fn is None, d.meta.name


class TestSignatureBehaviours:
    """Characteristics the paper attributes to specific Parsec workloads."""

    def _metrics(self, name):
        from repro.core.features import cpu_metrics_for
        return cpu_metrics_for(name, SimScale.TINY)

    def test_blackscholes_is_compute_bound(self):
        met = self._metrics("blackscholes")
        assert met.inst_mix["alu"] > 0.7

    def test_blackscholes_no_sharing(self):
        met = self._metrics("blackscholes")
        assert met.sharing.shared_access_ratio < 0.05

    def test_canneal_misses_most(self):
        canneal = self._metrics("canneal").miss_rate_4mb
        swaptions = self._metrics("swaptions").miss_rate_4mb
        assert canneal > swaptions

    def test_dedup_pipeline_communicates(self):
        met = self._metrics("dedup")
        assert met.sharing.consumer_read_ratio > 0.001

    def test_ferret_pipeline_communicates(self):
        met = self._metrics("ferret")
        assert met.sharing.consumer_read_ratio > 0.0005

    def test_streamcluster_twins_identical(self):
        a = self._metrics("streamcluster")
        b = self._metrics("streamcluster_p")
        assert a.inst_mix == b.inst_mix
        assert a.miss_rate_4mb == b.miss_rate_4mb


class TestDedupRoundTrip:
    def test_rle_decodes_to_original(self):
        import numpy as np
        from repro.workloads.parsec.dedup import _rle
        rng = np.random.default_rng(9)
        for _ in range(20):
            chunk = rng.integers(0, 4, rng.integers(1, 600)).astype(np.uint8)
            runs = _rle(chunk)
            decoded = np.concatenate(
                [np.full(n, v, dtype=np.uint8) for v, n in runs]
            )
            np.testing.assert_array_equal(decoded, chunk)

    def test_boundaries_cover_stream(self):
        import numpy as np
        from repro.inputs.misc import dedup_stream
        from repro.workloads.parsec.dedup import _boundaries
        data = dedup_stream(40000)
        edges = _boundaries(data)
        assert edges[0] == 0 and edges[-1] == data.size
        assert (np.diff(edges) > 0).all()


class TestCrossValidation:
    def test_blackscholes_put_call_parity(self):
        from repro.inputs.misc import option_portfolio
        from repro.workloads.parsec.blackscholes import _price
        o = option_portfolio(200)
        call = _price(o["spot"], o["strike"], o["rate"], o["volatility"],
                      o["expiry"], np.ones(200, dtype=bool))
        put = _price(o["spot"], o["strike"], o["rate"], o["volatility"],
                     o["expiry"], np.zeros(200, dtype=bool))
        lhs = call - put
        rhs = o["spot"] - o["strike"] * np.exp(-o["rate"] * o["expiry"])
        # The polynomial CNDF is accurate to ~1e-7.
        np.testing.assert_allclose(lhs, rhs, atol=1e-4)

    def test_blackscholes_cndf_vs_scipy(self):
        from scipy.stats import norm
        from repro.workloads.parsec.blackscholes import _cndf
        x = np.linspace(-4, 4, 101)
        np.testing.assert_allclose(_cndf(x), norm.cdf(x), atol=5e-7)

    def test_raytrace_bvh_equals_bruteforce(self):
        # check_cpu already compares the BVH render to brute force; here
        # verify the BVH actually prunes (fewer sphere tests than n^2).
        from repro.workloads.parsec import raytrace
        p = raytrace.cpu_sizes(SimScale.TINY)
        machine = Machine()
        raytrace.cpu_run(machine, SimScale.TINY)
        rays = p["h"] * p["w"]
        # Loads on the sphere arrays bound the intersection tests.
        assert machine.counts.load < rays * p["n_spheres"] * 4
