"""Bit-identical equivalence of the chunked analytics vs dense oracles.

The out-of-core pipeline only earns its keep if streaming a trace chunk
by chunk is *indistinguishable* from the dense whole-trace computation.
Every streaming decomposition (reuse distances, sharing, the exact-LRU
caches, coherence, GPU timing) is checked here against its dense
counterpart at several chunk geometries, including the degenerate ones:
single-access chunks, chunks that split mid-launch, and empty appends.
"""

import numpy as np
import pytest

from repro.common import config as cfgmod

_N = 12000


@pytest.fixture(scope="module")
def trace_cols():
    rng = np.random.default_rng(42)
    addrs = (
        rng.integers(0, 3000, _N) * 64 + rng.integers(0, 64, _N)
    ).astype(np.int64)
    tids = rng.integers(0, 8, _N).astype(np.int16)
    writes = rng.random(_N) < 0.3
    return addrs, tids, writes


def _chunker(cols, size):
    n = cols[0].size

    def it():
        for i in range(0, n, size):
            yield tuple(c[i : i + size] for c in cols)

    return it


CHUNK_SIZES = (5000, 4097, 999, 1)


@pytest.mark.parametrize("size", CHUNK_SIZES)
def test_reuse_histogram_chunked_matches_dense(trace_cols, size):
    from repro.analytics.chunked import reuse_histogram_chunked
    from repro.cpusim.reuse import reuse_distance_histogram

    addrs = trace_cols[0]
    hd, cd = reuse_distance_histogram(addrs, 64)
    hc, cc = reuse_histogram_chunked(_chunker(trace_cols, size), 64)
    assert cc == cd
    np.testing.assert_array_equal(hc, hd)


@pytest.mark.parametrize("size", CHUNK_SIZES[:3])
def test_streaming_sharing_matches_dense(trace_cols, size):
    from repro.analytics.chunked import StreamingSharing
    from repro.cpusim.sharing import analyze_sharing

    addrs, tids, writes = trace_cols
    dense = analyze_sharing(addrs, tids, writes)
    st = StreamingSharing(64)
    for a, t, w in _chunker(trace_cols, size)():
        st.update(a, t, w)
    assert st.result(_chunker(trace_cols, size)) == dense


def test_streaming_sharing_rejects_wide_tids():
    from repro.analytics.chunked import StreamingSharing

    st = StreamingSharing(64)
    with pytest.raises(ValueError):
        st.update(
            np.zeros(4, dtype=np.int64),
            np.full(4, 64, dtype=np.int64),
            np.zeros(4, dtype=bool),
        )


@pytest.mark.parametrize("size", CHUNK_SIZES[:3])
def test_sharing_at_size_chunked_matches_dense(trace_cols, size):
    from repro.cpusim.sharing import sharing_at_size, sharing_at_size_chunked

    addrs, tids, _ = trace_cols
    for cache_bytes in (256 * 1024, 4 * 1024 * 1024):
        dense = sharing_at_size(addrs, tids, cache_bytes)
        chunked = sharing_at_size_chunked(
            _chunker(trace_cols, size), cache_bytes
        )
        assert chunked == dense


@pytest.mark.parametrize("size", CHUNK_SIZES[:3])
def test_coherence_chunked_matches_dense(trace_cols, size):
    from repro.cpusim.coherence import (
        simulate_coherent_caches,
        simulate_coherent_caches_chunked,
    )

    addrs, tids, writes = trace_cols
    dense = simulate_coherent_caches(addrs, tids, writes)
    chunked = simulate_coherent_caches_chunked(_chunker(trace_cols, size))
    assert chunked == dense


@pytest.mark.parametrize("size", (5000, 999))
def test_miss_curves_chunked_match_dense(trace_cols, size):
    from repro.cpusim.reuse import miss_rate_curve, miss_rate_curve_chunked
    from repro.cpusim.workingset import fine_miss_curve, fine_miss_curve_chunked

    addrs = trace_cols[0]
    assert miss_rate_curve_chunked(_chunker(trace_cols, size)) == (
        miss_rate_curve(addrs)
    )
    assert fine_miss_curve_chunked(_chunker(trace_cols, size)) == (
        fine_miss_curve(addrs)
    )


def test_shared_cache_warm_batches_match_dense(trace_cols):
    from repro.cpusim.cache import SharedCache

    addrs = trace_cols[0]
    dense = SharedCache(256 * 1024, assoc=4)
    dense.run(addrs, record_hits=False)
    for size in (5000, 4097):
        warm = SharedCache(256 * 1024, assoc=4)
        for a, _, _ in _chunker(trace_cols, size)():
            warm.run(a, record_hits=False)
        d, w = dense.stats, warm.stats
        assert (d.accesses, d.misses, d.cold_misses, d.evictions) == (
            w.accesses, w.misses, w.cold_misses, w.evictions
        )
    # Mixed batch/scalar boundary: pieces below the batch threshold take
    # the scalar path against the same warm state.
    mixed = SharedCache(256 * 1024, assoc=4)
    pos = 0
    for piece in (6000, 100, 5000, 900):
        mixed.run(addrs[pos : pos + piece], record_hits=False)
        pos += piece
    m = mixed.stats
    d = dense.stats
    assert (d.accesses, d.misses, d.cold_misses, d.evictions) == (
        m.accesses, m.misses, m.cold_misses, m.evictions
    )


def test_characterize_trace_invariant_to_chunk_rows():
    from repro.cpusim import Machine
    from repro.cpusim.metrics import characterize_trace
    from repro.workloads import base as wl
    from repro.common.config import SimScale

    wl.load_all()
    defn = wl.get("hotspot")

    def run():
        m = Machine()
        defn.cpu_fn(m, SimScale.TINY)
        return characterize_trace(m, "hotspot")

    base = run()
    with cfgmod.override(trace_chunk_rows=1000):
        small = run()
    assert base.miss_curve == small.miss_curve
    assert base.miss_rate_4mb == small.miss_rate_4mb
    assert base.sharing == small.sharing
    assert base.data_footprint_4kb == small.data_footprint_4kb


def test_gpu_timing_and_sharing_invariant_to_chunk_rows():
    from repro.gpusim import GPUConfig, TimingModel
    from repro.gpusim.gpu import GPU
    from repro.gpusim.sharing import analyze_gpu_sharing
    from repro.workloads import base as wl
    from repro.common.config import SimScale

    wl.load_all()
    defn = wl.get("hotspot")

    def run():
        gpu = GPU(app_name="hotspot")
        defn.gpu_fn(gpu, SimScale.TINY)
        trace = gpu.trace
        timing = TimingModel(GPUConfig()).time(trace)
        return timing, analyze_gpu_sharing(trace)

    timing_a, sharing_a = run()
    # 1000-row chunks split every launch of the TINY trace many times.
    with cfgmod.override(trace_chunk_rows=1000):
        timing_b, sharing_b = run()
    assert timing_a.cycles == timing_b.cycles
    assert timing_a.dram_bytes == timing_b.dram_bytes
    assert sharing_a == sharing_b
