"""End-to-end tests of every Rodinia workload on both substrates."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU
from repro.workloads import base as wl

wl.load_all()
RODINIA = [d.meta.name for d in wl.all_rodinia()]


@pytest.mark.parametrize("name", RODINIA)
def test_cpu_implementation_correct(name):
    defn = wl.get(name)
    machine = Machine()
    result = defn.cpu_fn(machine, SimScale.TINY)
    defn.check_cpu(result, SimScale.TINY)
    assert machine.n_accesses > 0, "CPU run must produce a memory trace"
    assert machine.counts.total > 0


@pytest.mark.parametrize("name", RODINIA)
def test_gpu_implementation_correct(name):
    defn = wl.get(name)
    gpu = GPU()
    result = defn.gpu_fn(gpu, SimScale.TINY)
    defn.check_gpu(result, SimScale.TINY)
    tr = gpu.trace
    assert tr.thread_insts > 0
    assert tr.n_launches > 0


@pytest.mark.parametrize("name", RODINIA)
def test_gpu_occupancy_histogram_consistent(name):
    gpu = GPU()
    wl.get(name).gpu_fn(gpu, SimScale.TINY)
    buckets = gpu.trace.occupancy_buckets()
    assert sum(buckets.values()) == pytest.approx(1.0)
    assert 1.0 <= gpu.trace.mean_warp_occupancy <= 32.0


@pytest.mark.parametrize("name", RODINIA)
def test_gpu_mem_mix_is_distribution(name):
    gpu = GPU()
    wl.get(name).gpu_fn(gpu, SimScale.TINY)
    mix = gpu.trace.mem_mix()
    assert sum(mix.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in mix.values())


class TestRegistry:
    def test_twelve_rodinia_workloads(self):
        assert len(RODINIA) == 12

    def test_table1_dwarfs(self):
        expected = {
            "kmeans": "Dense Linear Algebra",
            "nw": "Dynamic Programming",
            "hotspot": "Structured Grid",
            "backprop": "Unstructured Grid",
            "srad": "Structured Grid",
            "leukocyte": "Structured Grid",
            "bfs": "Graph Traversal",
            "streamcluster": "Dense Linear Algebra",
            "mummer": "Graph Traversal",
            "cfd": "Unstructured Grid",
            "lud": "Dense Linear Algebra",
            "heartwall": "Structured Grid",
        }
        for name, dwarf in expected.items():
            assert wl.get(name).meta.dwarf == dwarf

    def test_all_have_both_implementations(self):
        for d in wl.all_rodinia():
            assert d.gpu_fn is not None, d.meta.name
            assert d.cpu_fn is not None, d.meta.name
            assert d.check_gpu is not None and d.check_cpu is not None

    def test_incremental_versions_registered(self):
        # The paper's Section III-C: versions of Leukocyte, LUD,
        # Needleman-Wunsch and SRAD.
        for bench in ("srad", "leukocyte", "lud", "nw"):
            assert set(wl.get(bench).gpu_versions) == {1, 2}, bench


class TestVersions:
    @pytest.mark.parametrize("bench", ["srad", "leukocyte", "lud", "nw"])
    def test_v1_functionally_equivalent(self, bench):
        defn = wl.get(bench)
        gpu = GPU()
        result = defn.gpu_versions[1](gpu, SimScale.TINY)
        defn.check_gpu(result, SimScale.TINY)

    def test_srad_v2_uses_more_shared_memory(self):
        defn = wl.get("srad")
        g1, g2 = GPU(), GPU()
        defn.gpu_versions[1](g1, SimScale.TINY)
        defn.gpu_versions[2](g2, SimScale.TINY)
        assert g2.trace.mem_mix()["shared"] > g1.trace.mem_mix()["shared"]

    def test_leukocyte_v2_removes_global_traffic(self):
        defn = wl.get("leukocyte")
        g1, g2 = GPU(), GPU()
        defn.gpu_versions[1](g1, SimScale.TINY)
        defn.gpu_versions[2](g2, SimScale.TINY)
        assert g2.trace.mem_mix()["global"] < g1.trace.mem_mix()["global"]


class TestSignatureBehaviours:
    """Per-workload characteristics the paper calls out by name."""

    def test_bfs_divergent_warps(self):
        gpu = GPU()
        wl.get("bfs").gpu_fn(gpu, SimScale.TINY)
        buckets = gpu.trace.occupancy_buckets()
        assert buckets["1-8"] > 0.3

    def test_nw_never_fills_a_warp(self):
        gpu = GPU()
        wl.get("nw").gpu_fn(gpu, SimScale.TINY)
        buckets = gpu.trace.occupancy_buckets()
        assert buckets["25-32"] == 0.0
        assert buckets["17-24"] == 0.0

    def test_kmeans_uses_texture_and_const(self):
        gpu = GPU()
        wl.get("kmeans").gpu_fn(gpu, SimScale.TINY)
        mix = gpu.trace.mem_mix()
        assert mix["tex"] > 0.3 and mix["const"] > 0.3

    def test_heartwall_uses_constant_memory(self):
        gpu = GPU()
        wl.get("heartwall").gpu_fn(gpu, SimScale.TINY)
        assert gpu.trace.mem_mix()["const"] > 0.2

    def test_hotspot_is_shared_memory_heavy(self):
        gpu = GPU()
        wl.get("hotspot").gpu_fn(gpu, SimScale.TINY)
        assert gpu.trace.mem_mix()["shared"] > 0.5

    def test_mummer_touches_texture_tree(self):
        gpu = GPU()
        wl.get("mummer").gpu_fn(gpu, SimScale.TINY)
        assert gpu.trace.mem_mix()["tex"] > 0.4

    def test_bfs_cfd_all_global(self):
        for name in ("bfs", "cfd"):
            gpu = GPU()
            wl.get(name).gpu_fn(gpu, SimScale.TINY)
            assert gpu.trace.mem_mix()["global"] == pytest.approx(1.0), name

    def test_nw_wavefront_launch_count(self):
        gpu = GPU()
        wl.get("nw").gpu_fn(gpu, SimScale.TINY)
        from repro.workloads.rodinia import nw
        nb = nw.gpu_sizes(SimScale.TINY)["n"] // 16
        assert gpu.trace.n_launches == 2 * nb - 1

    def test_lud_grids_shrink(self):
        gpu = GPU()
        wl.get("lud").gpu_fn(gpu, SimScale.TINY)
        internal = [lt for lt in gpu.trace.launches
                    if lt.kernel_name == "lud_internal"]
        sizes = [lt.n_blocks for lt in internal]
        assert sizes == sorted(sizes, reverse=True)
