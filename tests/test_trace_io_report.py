"""Tests for trace serialization, the report generator, and load balance."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.cpusim import Machine
from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.gpusim.trace_io import load_trace, save_trace
from repro.workloads import get


class TestTraceIO:
    def _trace(self):
        gpu = GPU()
        get("hotspot").gpu_fn(gpu, SimScale.TINY)
        return gpu.trace

    def test_roundtrip_preserves_aggregates(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "hs.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.app_name == trace.app_name
        assert loaded.n_launches == trace.n_launches
        assert loaded.thread_insts == trace.thread_insts
        assert loaded.issued_warp_insts == trace.issued_warp_insts
        assert loaded.mem_mix() == trace.mem_mix()
        np.testing.assert_array_equal(loaded.occupancy_hist,
                                      trace.occupancy_hist)

    def test_roundtrip_preserves_timing_exactly(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "hs.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for cfg in (GPUConfig.sim_default(), GPUConfig.gtx480_l1_bias()):
            a = TimingModel(cfg).time(trace)
            b = TimingModel(cfg).time(loaded)
            assert a.cycles == b.cycles, cfg.name
            assert a.dram_bytes == b.dram_bytes, cfg.name

    def test_transactions_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "hs.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for a, b in zip(trace.launches, loaded.launches):
            aa, ab, ast = a.transactions()
            ba, bb, bst = b.transactions()
            np.testing.assert_array_equal(aa, ba)
            np.testing.assert_array_equal(ab, bb)
            np.testing.assert_array_equal(ast, bst)

    def test_bad_format_rejected(self, tmp_path):
        import json
        path = tmp_path / "bad.npz"
        header = np.frombuffer(
            json.dumps({"format": 99, "app_name": "x", "launches": []}).encode(),
            dtype=np.uint8,
        )
        np.savez(path, header=header)
        with pytest.raises(ValueError):
            load_trace(path)


class TestTraceIOVersions:
    """Both on-disk layouts load; the v1 writer stays exercised."""

    def _trace(self):
        gpu = GPU()
        get("hotspot").gpu_fn(gpu, SimScale.TINY)
        return gpu.trace

    @staticmethod
    def _assert_equal(a, b):
        assert a.n_launches == b.n_launches
        assert a.thread_insts == b.thread_insts
        for la, lb in zip(a.launches, b.launches):
            assert la.kernel_name == lb.kernel_name
            assert la.grid == lb.grid and la.block == lb.block
            for ca, cb in zip(la.transactions(), lb.transactions()):
                np.testing.assert_array_equal(ca, cb)

    def test_v1_writer_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "v1.npz"
        save_trace(trace, path, version=1)
        self._assert_equal(trace, load_trace(path))

    def test_v2_roundtrip_with_split_groups(self, tmp_path):
        from repro.common import config as cfgmod

        trace = self._trace()
        path = tmp_path / "v2.npz"
        # Tiny group size forces many column groups, each spanning
        # partial launches; the loader redistributes rows by count.
        with cfgmod.override(trace_chunk_rows=777):
            save_trace(trace, path)
        self._assert_equal(trace, load_trace(path))

    def test_v2_smaller_than_v1(self, tmp_path):
        trace = self._trace()
        p1, p2 = tmp_path / "v1.npz", tmp_path / "v2.npz"
        save_trace(trace, p1, version=1)
        save_trace(trace, p2)
        # Delta-encoded addresses + packed store bits compress far
        # better than per-launch dense columns.
        assert p2.stat().st_size < p1.stat().st_size

    def test_unsupported_save_version_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(self._trace(), tmp_path / "x.npz", version=3)


class TestLoadBalance:
    def test_balanced_chunks(self):
        m = Machine(n_threads=4)
        a = m.alloc(400)

        def w(t):
            for i in t.chunk(400):
                t.load(a, i)

        m.parallel(w)
        assert m.load_imbalance() == pytest.approx(1.0, abs=0.05)

    def test_skewed_work_detected(self):
        m = Machine(n_threads=4)
        a = m.alloc(400)

        def w(t):
            reps = 10 if t.tid == 0 else 1
            for _ in range(reps):
                t.load(a, np.arange(100))

        m.parallel(w)
        assert m.load_imbalance() > 2.0

    def test_no_work_is_neutral(self):
        assert Machine().load_imbalance() == 1.0


class TestReport:
    def test_report_covers_requested_workloads(self):
        from repro.core.report import build_report
        text = build_report(SimScale.TINY, names=["hotspot", "blackscholes"])
        assert "### hotspot(R)" in text
        assert "### blackscholes(P)" in text
        assert "GPU (CUDA-style) profile" in text      # hotspot has a GPU side
        assert "Instruction mix" in text
        assert "Suite similarity" in text

    def test_parsec_only_card_has_no_gpu_section(self):
        from repro.core.report import build_report
        text = build_report(SimScale.TINY, names=["vips", "bfs"])
        card = text.split("### vips(P)")[1].split("###")[0]
        assert "GPU (CUDA-style) profile" not in card
        assert "Miss rate @ 4 MB" in card

    def test_runner_report_command(self, capsys):
        from repro.experiments.runner import main
        assert main(["report", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "# Workload characterization report" in out
        assert "streamcluster(R, P)" in out
