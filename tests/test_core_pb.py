"""Tests for Plackett-Burman designs and effect analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pb_design, pb_effects
from repro.core.plackett_burman import rank_factors


class TestDesigns:
    @pytest.mark.parametrize("k", [2, 5, 9, 11, 15, 19, 23])
    def test_levels_are_pm_one(self, k):
        d = pb_design(k)
        assert set(np.unique(d).tolist()) <= {-1, 1}

    @pytest.mark.parametrize("k", [2, 5, 9, 11, 19, 23])
    def test_columns_orthogonal(self, k):
        d = pb_design(k)
        gram = d.T @ d
        off = gram - np.diag(np.diag(gram))
        # Cyclic PB designs with the all-minus row are exactly orthogonal.
        assert np.abs(off).max() == 0

    def test_smallest_design_chosen(self):
        assert pb_design(9).shape[0] == 12
        assert pb_design(12).shape[0] == 20
        assert pb_design(20).shape[0] == 24

    def test_too_many_factors(self):
        with pytest.raises(ValueError):
            pb_design(24)

    def test_foldover_doubles_runs(self):
        d = pb_design(9, foldover=True)
        assert d.shape[0] == 24
        np.testing.assert_array_equal(d[:12], -d[12:])

    def test_needs_a_factor(self):
        with pytest.raises(ValueError):
            pb_design(0)


class TestEffects:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 11),
        st.integers(0, 10_000),
    )
    def test_linear_model_recovered(self, k, seed):
        rng = np.random.default_rng(seed)
        d = pb_design(k)
        true = rng.normal(0.0, 2.0, k)
        y = d @ true + 5.0
        effects = pb_effects(d, y)
        np.testing.assert_allclose(effects, 2.0 * true, atol=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pb_effects(pb_design(3), np.zeros(5))

    def test_rank_factors_order(self):
        d = pb_design(4)
        y = 10.0 * d[:, 2] - 3.0 * d[:, 0]
        ranked = rank_factors(d, y, ["a", "b", "c", "d"])
        assert ranked[0][0] == "c"
        assert ranked[1][0] == "a"
        shares = [s for _, _, s in ranked]
        assert sum(shares) == pytest.approx(1.0)
