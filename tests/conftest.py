"""Shared test fixtures.

The artifact cache (:mod:`repro.core.artifacts`) defaults to
``.repro_cache`` under the current directory; during the test session it
is redirected to a throwaway temporary directory so tests exercise the
persistence code without polluting the working tree or leaking state
between test runs.
"""

import pytest

from repro.core import artifacts


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("repro_cache")
    artifacts.set_artifact_cache(artifacts.ArtifactCache(root))
    yield
    artifacts.set_artifact_cache(None, clear=True)
