"""Shared test fixtures.

The artifact cache (:mod:`repro.core.artifacts`) defaults to
``.repro_cache`` under the current directory; during the test session it
is redirected to a throwaway temporary directory so tests exercise the
persistence code without polluting the working tree or leaking state
between test runs.  The run registry (:mod:`repro.fidelity.registry`)
gets the same treatment via ``REPRO_REGISTRY`` — the runner CLI would
otherwise default it to ``.repro_runs`` in the working tree.
"""

import os

import pytest

from repro.core import artifacts


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("repro_cache")
    artifacts.set_artifact_cache(artifacts.ArtifactCache(root))
    yield
    artifacts.set_artifact_cache(None, clear=True)


@pytest.fixture(autouse=True, scope="session")
def _isolated_run_registry(tmp_path_factory):
    prev = os.environ.get("REPRO_REGISTRY")
    os.environ["REPRO_REGISTRY"] = str(tmp_path_factory.mktemp("repro_runs"))
    yield
    if prev is None:
        os.environ.pop("REPRO_REGISTRY", None)
    else:
        os.environ["REPRO_REGISTRY"] = prev
