"""Simulated-GPU profiler: counter sets, stall attribution, drift gating.

The exactness contract (ISSUE 5): per launch, the stall-attribution
components sum *bit-exactly* to ``LaunchTiming.body_cycles``, and
``cycles`` is exactly ``launch_overhead + body`` in the model's own
float order — across every Rodinia GPU workload at TINY, under both the
cacheless and the Fermi cache-ladder configurations, and identically on
the scalar and block-batched execution engines.  Around that core:
tie-break determinism of the ``bound`` classification, CounterSet
invariants, rollups/hot-kernel tables, the ``gpuprof`` drift family,
and the ``runner --gpu-profile`` CLI surface.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SimScale, override
from repro.fidelity.drift import check_drift, tolerance_for
from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.gpusim.profiler import (
    STALL_COMPONENTS,
    attribute_stalls,
    cycles_per_transaction,
    machine_balance,
    suite_metrics,
    suite_table,
)
from repro.gpusim.timing import TimingResult, classify_bound
from repro.gpusim.trace import KernelTrace
from repro.workloads import base as wl

wl.load_all()
GPU_WORKLOADS = sorted(n for n, d in wl.REGISTRY.items() if d.has_gpu)

CONFIGS = [GPUConfig.sim_default(), GPUConfig.gtx480_shared_bias()]


def _run(name: str) -> KernelTrace:
    defn = wl.get(name)
    gpu = GPU(app_name=name)
    defn.gpu_fn(gpu, SimScale.TINY)
    return gpu.trace


@pytest.fixture(scope="module")
def traces():
    return {name: _run(name) for name in GPU_WORKLOADS}


# ----------------------------------------------------------------------
# attribute_stalls / classify_bound units
# ----------------------------------------------------------------------
nonneg = st.floats(min_value=0.0, max_value=1e12,
                   allow_nan=False, allow_infinity=False)


class TestAttribution:
    @given(issue=nonneg, bw=nonneg, lat=nonneg)
    @settings(max_examples=300, deadline=None)
    def test_sums_bit_exactly_for_any_components(self, issue, bw, lat):
        bound, body, margin = classify_bound(issue, bw, lat)
        out = attribute_stalls(issue, bw, lat, body, bound)
        assert out["issue"] + out["bandwidth"] + out["latency"] == body
        assert set(out) == set(STALL_COMPONENTS)
        assert all(v >= 0.0 for v in out.values())
        assert margin >= 0.0

    def test_zero_body_gives_all_zero(self):
        out = attribute_stalls(0.0, 0.0, 0.0, 0.0, "issue")
        assert out == {"issue": 0.0, "bandwidth": 0.0, "latency": 0.0}

    def test_shares_are_proportional(self):
        out = attribute_stalls(3.0, 1.0, 0.0, 3.0, "issue")
        # demand 4.0, body 3.0: issue gets 3*(3/4), bandwidth 3*(1/4)
        assert out["bandwidth"] == pytest.approx(0.75)
        assert out["latency"] == 0.0
        assert out["issue"] + out["bandwidth"] + out["latency"] == 3.0


class TestClassifyBound:
    def test_documented_tie_precedence(self):
        # issue > latency > bandwidth on exact ties
        assert classify_bound(5.0, 5.0, 5.0)[0] == "issue"
        assert classify_bound(1.0, 5.0, 5.0)[0] == "latency"
        assert classify_bound(1.0, 5.0, 2.0)[0] == "bandwidth"
        assert classify_bound(5.0, 5.0, 1.0)[0] == "issue"
        assert classify_bound(1.0, 2.0, 5.0)[0] == "latency"

    def test_all_zero_is_issue_with_zero_margin(self):
        assert classify_bound(0.0, 0.0, 0.0) == ("issue", 0.0, 0.0)

    def test_margin_is_gap_to_runner_up(self):
        bound, body, margin = classify_bound(3.0, 1.0, 2.0)
        assert (bound, body, margin) == ("issue", 3.0, 1.0)
        assert classify_bound(4.0, 4.0, 1.0)[2] == 0.0

    @given(issue=nonneg, bw=nonneg, lat=nonneg)
    @settings(max_examples=200, deadline=None)
    def test_body_is_max_and_bound_names_it(self, issue, bw, lat):
        bound, body, _ = classify_bound(issue, bw, lat)
        assert body == max(issue, bw, lat)
        assert {"issue": issue, "bandwidth": bw, "latency": lat}[bound] == body


# ----------------------------------------------------------------------
# The exactness contract over every Rodinia GPU workload
# ----------------------------------------------------------------------
class TestWorkloadExactness:
    @pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.name)
    def test_stall_sums_bit_exact_everywhere(self, traces, cfg):
        model = TimingModel(cfg)
        for name, trace in traces.items():
            prof = model.profile(trace)
            timed = model.time(trace)
            # Same pricing path: totals agree bit-for-bit.
            assert prof.total_cycles == timed.cycles, name
            assert len(prof.counters) == len(timed.launches)
            for cs, lt in zip(prof.counters, timed.launches):
                loc = f"{name}/{cs.kernel_name}[{cs.launch_index}]"
                total = (cs.stalls["issue"] + cs.stalls["bandwidth"]
                         + cs.stalls["latency"])
                assert total == cs.body_cycles, loc
                assert cs.body_cycles == lt.body_cycles, loc
                # cycles - overhead is NOT recomputable in floats; the
                # stored body makes the identity exact.
                assert cs.cycles == cfg.launch_overhead_cycles + cs.body_cycles, loc
                assert cs.cycles == lt.cycles, loc
                assert cs.bound == lt.bound, loc
                assert cs.bound_margin == lt.bound_margin, loc

    def test_bound_matches_classify_bound(self, traces):
        model = TimingModel(GPUConfig.sim_default())
        for trace in traces.values():
            for lt in model.time(trace).launches:
                bound, body, margin = classify_bound(
                    lt.issue_cycles, lt.bandwidth_cycles, lt.latency_cycles
                )
                assert lt.bound == bound
                assert lt.body_cycles == body
                assert lt.bound_margin == margin

    @pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.name)
    def test_counterset_invariants(self, traces, cfg):
        model = TimingModel(cfg)
        for name, trace in traces.items():
            for cs in model.profile(trace).counters:
                loc = f"{name}/{cs.kernel_name}"
                assert cs.dram_bytes == cs.dram_transactions * 64, loc
                assert sum(cs.channel_transactions) == cs.dram_transactions
                assert len(cs.channel_transactions) == cfg.n_mem_channels
                assert cs.dram_transactions <= cs.mem_transactions, loc
                assert 0.0 < cs.coalescing_efficiency <= 1.0, loc
                assert 0 <= cs.l1_hits <= cs.l1_accesses, loc
                assert 0 <= cs.l2_hits <= cs.l2_accesses, loc
                assert cs.waves >= 1 and cs.effective_sms >= 1, loc
                assert cs.resident_warps >= 1, loc
                assert cs.arithmetic_intensity >= 0.0, loc
                assert cs.roofline in ("compute", "bandwidth"), loc
                if not cfg.has_l1 and not cfg.has_l2:
                    assert cs.l1_accesses == cs.l2_accesses == 0, loc
                    assert cs.dram_transactions == cs.mem_transactions, loc

    def test_scalar_and_batched_countersets_identical(self):
        model = TimingModel(GPUConfig.gtx480_shared_bias())
        for name in GPU_WORKLOADS:
            defn = wl.get(name)
            with override(gpu_batch=False):
                scalar = GPU(app_name=name)
                defn.gpu_fn(scalar, SimScale.TINY)
            with override(gpu_batch=True):
                batched = GPU(app_name=name)
                defn.gpu_fn(batched, SimScale.TINY)
            a = model.profile(scalar.trace)
            b = model.profile(batched.trace)
            assert len(a.counters) == len(b.counters), name
            for x, y in zip(a.counters, b.counters):
                assert x.as_dict() == y.as_dict(), f"{name}/{x.kernel_name}"


# ----------------------------------------------------------------------
# Zero-cycle guards (satellite)
# ----------------------------------------------------------------------
class TestZeroCycleGuards:
    def test_empty_timing_result_returns_zeros(self):
        res = TimingResult(
            config=GPUConfig.sim_default(), launches=[],
            cycles=0.0, thread_insts=0, dram_bytes=0,
        )
        assert res.ipc == 0.0
        assert res.bandwidth_gbs == 0.0
        assert res.bw_utilization == 0.0
        assert res.time_s == 0.0

    def test_empty_trace_profiles_cleanly(self):
        model = TimingModel(GPUConfig.sim_default())
        prof = model.profile(KernelTrace(app_name="ghost"))
        assert prof.counters == []
        assert prof.total_cycles == 0.0
        assert prof.stall_mix() == {c: 0.0 for c in STALL_COMPONENTS}
        assert prof.hot_kernels() == []
        assert prof.roofline() in ("compute", "bandwidth")
        table = suite_table([prof])
        assert len(table.rows) == 1
        json.dumps(prof.metrics(), allow_nan=False)


# ----------------------------------------------------------------------
# Rollups, tables, metrics
# ----------------------------------------------------------------------
class TestRollups:
    @pytest.fixture(scope="class")
    def prof(self, traces):
        model = TimingModel(GPUConfig.sim_default())
        return model.profile(traces["srad"])

    def test_kernel_rollup_sums_launches(self, prof):
        rolls = prof.kernels()
        assert sum(r.launches for r in rolls.values()) == len(prof.counters)
        assert sum(r.cycles for r in rolls.values()) == pytest.approx(
            prof.total_cycles
        )
        for roll in rolls.values():
            total = (roll.stalls["issue"] + roll.stalls["bandwidth"]
                     + roll.stalls["latency"])
            assert total == pytest.approx(roll.body_cycles, rel=1e-12)

    def test_hot_kernels_sorted_by_cycles(self, prof):
        hot = prof.hot_kernels(n=len(prof.kernels()))
        assert [r.cycles for r in hot] == sorted(
            (r.cycles for r in hot), reverse=True
        )
        assert prof.hot_kernels(1)[0].kernel_name == hot[0].kernel_name

    def test_stall_mix_fractions_sum_to_one(self, prof):
        mix = prof.stall_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        for cs in prof.counters:
            if cs.body_cycles:
                assert sum(cs.stall_mix().values()) == pytest.approx(1.0)

    def test_tables_render(self, prof):
        for table in (prof.kernel_table(), prof.counter_table()):
            text = table.render()
            for roll in prof.kernels().values():
                assert roll.kernel_name in text
        assert "roofline" in prof.kernel_table().render()

    def test_metrics_are_prefixed_finite_json(self, traces):
        model = TimingModel(GPUConfig.sim_default())
        profiles = [model.profile(traces[n]) for n in ("backprop", "nw")]
        merged = suite_metrics(profiles)
        assert all(k.startswith("gpuprof/") for k in merged)
        json.dumps(merged, allow_nan=False)
        assert "gpuprof/backprop/total/cycles" in merged
        assert merged["gpuprof/nw/total/launches"] > 0

    def test_machine_balance_and_tx_cost_positive(self):
        for cfg in CONFIGS:
            assert machine_balance(cfg) > 0.0
            assert cycles_per_transaction(cfg) > 0.0


# ----------------------------------------------------------------------
# Drift family (fidelity wiring)
# ----------------------------------------------------------------------
class TestDriftFamily:
    def test_gpuprof_tolerance_rule(self):
        tol = tolerance_for("gpuprof/srad/srad_k1_v2/cycles")
        assert tol.rel == pytest.approx(0.01)
        assert tol.abs_floor == pytest.approx(1e-6)

    def test_identical_profiles_pass_tampered_fail(self, traces):
        model = TimingModel(GPUConfig.sim_default())
        metrics = model.profile(traces["backprop"]).metrics()
        clean = check_drift(metrics, dict(metrics), scale="tiny")
        assert clean.exit_code == 0
        tampered = {
            k: v * 1.5 if k.endswith("/cycles") else v
            for k, v in metrics.items()
        }
        drift = check_drift(metrics, tampered, scale="tiny")
        assert drift.exit_code != 0
        failing = [m.metric for m in drift.entries if m.status == "fail"]
        assert failing and all(m.startswith("gpuprof/") for m in failing)


# ----------------------------------------------------------------------
# runner --gpu-profile CLI
# ----------------------------------------------------------------------
class TestRunnerCli:
    def test_gpu_profile_end_to_end(self, tmp_path, capsys):
        from repro.experiments import runner

        reg = tmp_path / "reg"
        base = tmp_path / "base.json"
        rc = runner.main([
            "fig1", "--scale", "tiny", "--registry", str(reg),
            "--gpu-profile", "--save-baseline", str(base),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stall attribution" in out
        assert "roofline" in out
        records = [p for p in reg.glob("gpuprof-*.json")
                   if not p.name.endswith(".chrome.json")]
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["kind"] == "gpuprof"
        assert record["experiments"] == ["gpuprof"]
        assert all(k.startswith("gpuprof/") for k in record["metrics"])
        # The simulated-cycles timeline landed next to the record.
        timelines = list(reg.glob("gpuprof-*.chrome.json"))
        assert len(timelines) == 1
        doc = json.loads(timelines[0].read_text())
        assert doc["otherData"]["clock"].startswith("simulated_cycles")
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        # The run record folded the gpuprof family in for baselining.
        saved = json.loads(base.read_text())
        assert "gpuprof" in saved["experiments"]
        assert any(k.startswith("gpuprof/") for k in saved["metrics"])

    def test_baseline_roundtrip_gates_counters(self, tmp_path, capsys):
        from repro.experiments import runner

        base = tmp_path / "base.json"
        assert runner.main([
            "fig1", "--scale", "tiny", "--registry", "off",
            "--gpu-profile", "--save-baseline", str(base),
        ]) == 0
        assert runner.main([
            "fig1", "--scale", "tiny", "--registry", "off",
            "--gpu-profile", "--baseline", str(base),
        ]) == 0
        record = json.loads(base.read_text())
        for key in record["metrics"]:
            if key.startswith("gpuprof/") and key.endswith("/cycles"):
                record["metrics"][key] *= 2.0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(record))
        capsys.readouterr()
        assert runner.main([
            "fig1", "--scale", "tiny", "--registry", "off",
            "--gpu-profile", "--baseline", str(tampered),
        ]) == 1
        assert "fail" in capsys.readouterr().out
