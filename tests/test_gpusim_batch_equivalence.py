"""Batched-vs-scalar equivalence for the block-batched SIMT engine.

The engine in :mod:`repro.gpusim.batch` must be *bit-identical* to the
sequential per-block oracle: every trace statistic (per-category counts,
occupancy histograms, transaction address/block/store streams, shared
replays, const/tex hit counts) and all device memory must match exactly,
on every Rodinia GPU workload and on adversarial synthetic divergence
patterns.  Kernels needing per-block host scalars must fall back to the
scalar engine — transparently and with rolled-back device memory.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SimScale
from repro.gpusim import BLOCK_BATCHES, GPU
from repro.workloads import base as wl

wl.load_all()
GPU_WORKLOADS = sorted(n for n, d in wl.REGISTRY.items() if d.has_gpu)
VERSIONED = sorted(
    (n, v)
    for n, d in wl.REGISTRY.items()
    if d.gpu_versions
    for v in d.gpu_versions
)

#: Kernels whose host-side control flow consumes per-block scalars (a
#: task id, a diagonal split, a strip range); these are scalar-only by
#: design and must be the *only* fallbacks.
KNOWN_FALLBACKS = {"heartwall_track", "lud_perimeter", "gicov_dilate_v2"}


def assert_trace_equal(a, b, label=""):
    """Exact equality of two KernelTraces, launch by launch."""
    assert len(a.launches) == len(b.launches), label
    for i, (x, y) in enumerate(zip(a.launches, b.launches)):
        loc = f"{label} launch {i} ({x.kernel_name})"
        assert x.kernel_name == y.kernel_name, loc
        assert (x.grid, x.block) == (y.grid, y.block), loc
        assert x.shared_bytes_per_block == y.shared_bytes_per_block, loc
        assert x.thread_insts == y.thread_insts, loc
        assert x.issued_warp_insts == y.issued_warp_insts, loc
        assert x.category_warp_insts == y.category_warp_insts, loc
        assert x.mem_warp_insts == y.mem_warp_insts, loc
        np.testing.assert_array_equal(
            x.occupancy_hist, y.occupancy_hist, err_msg=loc
        )
        assert x.shared_replays == y.shared_replays, loc
        assert x.const_serializations == y.const_serializations, loc
        assert (x.const_accesses, x.const_hits) == (
            y.const_accesses, y.const_hits), loc
        assert (x.tex_accesses, x.tex_hits) == (
            y.tex_accesses, y.tex_hits), loc
        for field, u, v in zip(
            ("tx_addrs", "tx_blocks", "tx_stores"),
            x.transactions(), y.transactions(),
        ):
            np.testing.assert_array_equal(u, v, err_msg=f"{loc} {field}")


def _flatten_result(result):
    if isinstance(result, dict):
        return [np.asarray(v) for v in result.values()]
    if isinstance(result, (tuple, list)):
        return [np.asarray(v) for v in result]
    return [] if result is None else [np.asarray(result)]


def _run_workload(name, version, scale, batch, monkeypatch):
    monkeypatch.setenv("REPRO_GPU_BATCH", "on" if batch else "off")
    defn = wl.get(name)
    fn = defn.gpu_versions[version] if version is not None else defn.gpu_fn
    gpu = GPU(app_name=name)
    result = fn(gpu, scale)
    return gpu.trace, _flatten_result(result)


class TestRodiniaEquivalence:
    @pytest.mark.parametrize("name", GPU_WORKLOADS)
    def test_small_scale_bit_identical(self, name, monkeypatch):
        del BLOCK_BATCHES[:]
        tb, rb = _run_workload(name, None, SimScale.SMALL, True, monkeypatch)
        routed = list(BLOCK_BATCHES)
        ts, rs = _run_workload(name, None, SimScale.SMALL, False, monkeypatch)
        assert_trace_equal(tb, ts, name)
        assert len(rb) == len(rs)
        for u, v in zip(rb, rs):
            np.testing.assert_array_equal(u, v, err_msg=name)
        # The batched engine must actually engage, and only the known
        # per-block-scalar kernels may fall back.
        assert routed, name
        fallbacks = {k for k, how, _ in routed if how == "fallback"}
        assert fallbacks <= KNOWN_FALLBACKS, name
        batched = [e for e in routed if e[1] == "batched"]
        assert batched or {k for k, _, _ in routed} <= KNOWN_FALLBACKS, name

    @pytest.mark.parametrize("name,version", VERSIONED)
    def test_versioned_variants_bit_identical(self, name, version, monkeypatch):
        tb, rb = _run_workload(name, version, SimScale.TINY, True, monkeypatch)
        ts, rs = _run_workload(name, version, SimScale.TINY, False, monkeypatch)
        assert_trace_equal(tb, ts, f"{name}:v{version}")
        for u, v in zip(rb, rs):
            np.testing.assert_array_equal(u, v, err_msg=f"{name}:v{version}")


def _adversarial_kernel(n, trip_mod, stride, thresh, csize, tsize):
    """A kernel exercising every batching hazard at once: per-lane loop
    trip counts (including whole blocks that never enter), nested masks,
    syncs inside divergent loops, shared-memory conflicts, const/tex
    reuse across blocks, and within-block colliding atomics.  Like every
    real launch, blocks write disjoint global segments (cross-block
    read-after-write in one launch is a race on hardware too)."""

    def k(ctx, gin, gout, cmem, tmem):
        T = ctx.nthreads
        sm = ctx.shared((max(T, 2),), np.float64)
        i = ctx.gtid % n
        v = ctx.load(gin, i)
        c = ctx.load(cmem, i % csize)
        t = ctx.load(tmem, (i * stride) % tsize)
        ctx.store(sm, ctx.tidx, v + c)
        ctx.sync()
        acc = v * 0.0
        trips = ctx.gtid % trip_mod
        for _ in ctx.range_(trips):
            acc = acc + ctx.load(sm, (ctx.tidx * 3) % T)
            with ctx.masked(acc > thresh):
                ctx.store(sm, (ctx.tidx + 1) % T, acc * 0.5)
            ctx.sync()
        # Duplicate targets *within* the block's own segment of gout.
        half = max(T // 2, 1)
        with ctx.masked((i % 3) != 0):
            ctx.atomic_add(gout, i - ctx.tidx + ctx.tidx % half, acc + t)
        total = ctx.block_reduce_sum(v, sm)
        ctx.store(gout, i, ctx.load(gout, i) + total * 1e-3)

    return k


class TestAdversarialDivergence:
    @settings(max_examples=25, deadline=None)
    @given(
        threads=st.sampled_from([1, 7, 32, 64, 100]),
        blocks=st.integers(1, 5),
        trip_mod=st.integers(1, 5),
        stride=st.integers(1, 7),
        thresh=st.floats(-2.0, 2.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_synthetic_kernel_bit_identical(
        self, threads, blocks, trip_mod, stride, thresh, seed
    ):
        rng = np.random.default_rng(seed)
        n = threads * blocks
        csize, tsize = 17, 23
        host = rng.standard_normal(n)
        chost = rng.standard_normal(csize)
        thost = rng.standard_normal(tsize)
        kernel = _adversarial_kernel(n, trip_mod, stride, thresh, csize, tsize)
        import os

        results = {}
        for mode in ("on", "off"):
            os.environ["REPRO_GPU_BATCH"] = mode
            try:
                gpu = GPU()
                gin = gpu.to_device(host)
                gout = gpu.alloc(n, dtype=np.float64)
                cmem = gpu.to_const(chost)
                tmem = gpu.to_texture(thost)
                gpu.launch(kernel, blocks, threads, gin, gout, cmem, tmem)
                results[mode] = (gpu.trace, gout.to_host())
            finally:
                os.environ.pop("REPRO_GPU_BATCH", None)
        tb, ob = results["on"]
        ts, os_ = results["off"]
        assert_trace_equal(tb, ts, "synthetic")
        np.testing.assert_array_equal(ob, os_)


class TestEngineMechanics:
    def test_toggle_off_disables_batching(self, monkeypatch):
        monkeypatch.setenv("REPRO_GPU_BATCH", "off")
        del BLOCK_BATCHES[:]
        gpu = GPU()
        out = gpu.alloc(256, dtype=np.int64)

        def k(ctx, out):
            ctx.store(out, ctx.gtid, ctx.gtid)

        gpu.launch(k, 4, 64, out)
        assert BLOCK_BATCHES == []
        np.testing.assert_array_equal(out.to_host(), np.arange(256))

    def test_chunked_batches_bit_identical(self, monkeypatch):
        """A tiny lane budget forces many chunks per launch; the deferred
        commit must still reassemble the exact scalar stream."""

        def k(ctx, a, out):
            i = ctx.gtid
            with ctx.masked(i % 2 == 0):
                ctx.store(out, i, ctx.load(a, i) * 2.0)

        host = np.arange(512, dtype=np.float64)
        runs = {}
        for mode, lanes in (("on", "64"), ("off", None)):
            monkeypatch.setenv("REPRO_GPU_BATCH", mode)
            if lanes:
                monkeypatch.setenv("REPRO_GPU_BATCH_LANES", lanes)
            gpu = GPU()
            a = gpu.to_device(host)
            out = gpu.alloc(512, dtype=np.float64)
            gpu.launch(k, 8, 64, a, out)
            runs[mode] = (gpu.trace, out.to_host())
            monkeypatch.delenv("REPRO_GPU_BATCH_LANES", raising=False)
        assert_trace_equal(runs["on"][0], runs["off"][0], "chunked")
        np.testing.assert_array_equal(runs["on"][1], runs["off"][1])

    def test_per_block_host_scalar_falls_back_with_rollback(self, monkeypatch):
        """A kernel that stores *before* consuming a per-block scalar:
        the batch attempt writes device memory, fails, and must leave no
        trace of the attempt (memory restored, stats from scalar only)."""

        def k(ctx, out):
            ctx.store(out, ctx.gtid, ctx.gtid + 1)
            if ctx.bidx % 2 == 1:  # array truth value in batch mode
                ctx.store(out, ctx.gtid, -ctx.gtid)

        results = {}
        for mode in ("on", "off"):
            monkeypatch.setenv("REPRO_GPU_BATCH", mode)
            del BLOCK_BATCHES[:]
            gpu = GPU()
            out = gpu.alloc(128, dtype=np.int64)
            gpu.launch(k, 2, 64, out)
            results[mode] = (gpu.trace, out.to_host(), list(BLOCK_BATCHES))
        assert_trace_equal(results["on"][0], results["off"][0], "fallback")
        np.testing.assert_array_equal(results["on"][1], results["off"][1])
        assert [(e[1], e[2]) for e in results["on"][2]] == [("fallback", 2)]
        assert results["off"][2] == []

    def test_local_scratch_write_falls_back(self, monkeypatch):
        """Host-allocated LOCAL scratch is sized per block and reused by
        every block in turn — cross-block dataflow the batch engine must
        refuse (the raytracing port's traversal stack works this way)."""
        from repro.gpusim import Space

        def k(ctx, scratch, out):
            ctx.store(scratch, ctx.tidx, ctx.gtid)
            ctx.store(out, ctx.gtid, ctx.load(scratch, ctx.tidx) * 2)

        results = {}
        for mode in ("on", "off"):
            monkeypatch.setenv("REPRO_GPU_BATCH", mode)
            del BLOCK_BATCHES[:]
            gpu = GPU()
            scratch = gpu.alloc(32, dtype=np.int64, space=Space.LOCAL)
            out = gpu.alloc(128, dtype=np.int64)
            gpu.launch(k, 4, 32, scratch, out)
            results[mode] = (gpu.trace, out.to_host(), list(BLOCK_BATCHES))
        assert_trace_equal(results["on"][0], results["off"][0], "local")
        np.testing.assert_array_equal(results["on"][1], results["off"][1])
        np.testing.assert_array_equal(results["on"][1], np.arange(128) * 2)
        assert [e[1] for e in results["on"][2]] == ["fallback"]

    def test_fallback_memoized_per_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_GPU_BATCH", "on")

        def k(ctx, out):
            if ctx.bidx > 0:
                ctx.store(out, ctx.gtid, 1)

        gpu = GPU()
        out = gpu.alloc(64, dtype=np.int64)
        del BLOCK_BATCHES[:]
        gpu.launch(k, 2, 32, out)
        gpu.launch(k, 2, 32, out)
        # First launch records the failed attempt; the second goes
        # straight to the scalar engine.
        assert [e[1] for e in BLOCK_BATCHES] == ["fallback"]

    def test_probe_records_engagement(self, monkeypatch):
        monkeypatch.setenv("REPRO_GPU_BATCH", "on")
        del BLOCK_BATCHES[:]
        gpu = GPU()
        out = gpu.alloc(256, dtype=np.int64)

        def k(ctx, out):
            ctx.store(out, ctx.gtid, ctx.gtid * 3)

        gpu.launch(k, 4, 64, out)
        assert BLOCK_BATCHES == [("k", "batched", 4)]
