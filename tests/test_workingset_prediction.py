"""Tests for working-set detection, sharing-vs-size, and prediction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction import PredictionResult, knn_predict, leave_one_out
from repro.cpusim.sharing import sharing_at_size
from repro.cpusim.workingset import (
    WorkingSet,
    detect_working_sets,
    fine_miss_curve,
    summarize,
)


def _loop_trace(n_lines, repeats, line=64, offset=0):
    """Cyclic sweep over n_lines cache lines, `repeats` times."""
    return np.tile(np.arange(n_lines) * line + offset, repeats)


class TestFineCurve:
    def test_matches_loop_footprint(self):
        # 1000 lines = 64,000 B footprint: misses collapse once the
        # cache exceeds it.
        addrs = _loop_trace(1000, 20)
        curve = fine_miss_curve(addrs)
        small = curve[min(s for s in curve if s >= 16 * 1024)]
        big = curve[max(curve)]
        assert small > 0.9
        assert big < 0.06  # only cold misses remain

    def test_monotone(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 22, 20000) // 64 * 64
        curve = fine_miss_curve(addrs)
        vals = [curve[s] for s in sorted(curve)]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_grid_density(self):
        addrs = _loop_trace(100, 2)
        curve = fine_miss_curve(addrs, points_per_octave=2)
        sizes = sorted(curve)
        # Two points per octave over 16 kB..32 MB: 11 octaves -> ~22.
        assert len(sizes) >= 20


class TestKneeDetection:
    def test_single_working_set(self):
        addrs = _loop_trace(1000, 20)   # 64 kB working set
        sets = summarize(addrs)
        assert len(sets) >= 1
        assert 64 * 1024 <= sets[0].size_bytes <= 256 * 1024
        assert sets[0].drop > 0.5

    def test_two_working_sets(self):
        # A hot 32 kB inner loop (most accesses) interleaved with 2 MB
        # sweeps: knees at both footprints.
        inner = _loop_trace(512, 40)
        outer = _loop_trace(32768, 1, offset=1 << 26)
        addrs = np.concatenate([inner, outer, inner, outer, inner])
        sets = summarize(addrs)
        assert len(sets) == 2
        assert sets[0].size_bytes < 256 * 1024
        assert sets[1].size_bytes > 1024 * 1024

    def test_flat_curve_no_knees(self):
        assert detect_working_sets({1024: 0.5, 2048: 0.5, 4096: 0.5}) == []

    def test_empty_curve(self):
        assert detect_working_sets({}) == []

    def test_adjacent_knees_merged(self):
        curve = {1024: 1.0, 2048: 0.6, 4096: 0.2, 8192: 0.2}
        sets = detect_working_sets(curve, min_drop_fraction=0.2)
        assert len(sets) == 1
        assert sets[0].drop == pytest.approx(0.8)


class TestSharingAtSize:
    def _trace(self, triples):
        a = np.array([t[0] for t in triples], dtype=np.int64)
        t = np.array([t[1] for t in triples], dtype=np.int16)
        return a, t

    def test_shared_hit_counted(self):
        a, t = self._trace([(0, 0), (0, 1), (0, 0)])
        s = sharing_at_size(a, t, 4096)
        assert s.shared_accesses == 2  # t1's hit and t0's re-hit
        assert s.shared_lifetimes == 1

    def test_private_stream(self):
        a, t = self._trace([(i * 64, i % 2) for i in range(100)])
        s = sharing_at_size(a, t, 64 * 1024)
        assert s.shared_accesses == 0
        assert s.frac_lifetimes_shared == 0.0

    def test_small_cache_hides_sharing(self):
        # Thread 0 sweeps 64 lines, then thread 1 sweeps the same lines.
        sweep0 = [(i * 64, 0) for i in range(64)]
        sweep1 = [(i * 64, 1) for i in range(64)]
        a, t = self._trace(sweep0 + sweep1)
        tiny = sharing_at_size(a, t, 1024)      # 16 lines: evicted first
        big = sharing_at_size(a, t, 64 * 1024)  # all resident
        assert big.shared_access_ratio > tiny.shared_access_ratio
        assert tiny.shared_accesses == 0

    def test_monotone_with_size_on_random_trace(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2048, 5000) * 64
        t = rng.integers(0, 4, 5000).astype(np.int16)
        r_small = sharing_at_size(a, t, 16 * 1024).shared_access_ratio
        r_big = sharing_at_size(a, t, 1 << 22).shared_access_ratio
        assert r_big >= r_small


class TestPrediction:
    def test_knn_exact_on_duplicate(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        targets = np.array([10.0, 20.0, 30.0])
        pred = knn_predict(coords, targets, np.array([0.0, 0.0]), k=1)
        assert pred == pytest.approx(10.0, rel=1e-6)

    def test_loo_recovers_smooth_function(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, (30, 3))
        y = np.exp(x[:, 0])           # monotone in feature 0
        res = leave_one_out(x, y, [f"w{i}" for i in range(30)], k=3)
        assert res.rank_correlation > 0.7

    def test_loo_rejects_tiny_suites(self):
        with pytest.raises(ValueError):
            leave_one_out(np.zeros((3, 2)), np.ones(3), ["a", "b", "c"], k=3)

    def test_metrics_sane(self):
        res = PredictionResult(["a", "b"], np.array([1.0, 2.0]),
                               np.array([2.0, 1.0]))
        assert -1.0 <= res.rank_correlation <= 1.0
        assert res.mean_abs_log_error == pytest.approx(1.0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_loo_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, (10, 4))
        y = rng.uniform(1, 100, 10)
        names = [f"w{i}" for i in range(10)]
        a = leave_one_out(x, y, names, k=3)
        b = leave_one_out(x, y, names, k=3)
        np.testing.assert_array_equal(a.predicted, b.predicted)


class TestExtensionExperiments:
    def test_workingsets_driver(self):
        from repro.common.config import SimScale
        from repro.experiments import get_driver
        res = get_driver("ext_workingsets")(SimScale.TINY)
        assert len(res.data) == 24
        # Canneal's big netlist must show a detected working set.
        assert len(res.data["canneal"]) >= 1

    def test_sharing_size_driver(self):
        from repro.common.config import SimScale
        from repro.experiments import get_driver
        res = get_driver("ext_sharing_size")(SimScale.TINY)
        for name, d in res.data.items():
            ratios = [d["by_size"][s] for s in sorted(d["by_size"])]
            # Residency-windowed sharing never exceeds whole-run sharing
            # and does not decrease with cache size.
            assert all(r <= d["whole_run"] + 1e-9 for r in ratios), name
            assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:])), name

    def test_prediction_driver(self):
        from repro.common.config import SimScale
        from repro.experiments import get_driver
        res = get_driver("ext_prediction")(SimScale.TINY)
        d = res.data
        assert d["Combined"]["rho"] >= d["CPU features only"]["rho"]
        assert len(d["per_workload"]) == 12
