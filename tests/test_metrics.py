"""Histogram correctness: the contracts the service observability
layer leans on (repro.telemetry.metrics).

Property-tested (hypothesis):

- **Merge associativity** — bucket counts, count, zero, min, max (and
  therefore every quantile) are bit-exact under any merge grouping;
  ``sum`` is float accumulation and is pinned only to a relative
  tolerance.
- **Quantile error bounds** — the sketch quantile never undershoots
  the exact rank statistic (numpy ``inverted_cdf``) and overshoots by
  less than ``RELATIVE_ERROR``.
- **Cross-process bit-determinism** — a histogram built in a child
  process and merged over the JSON wire format is indistinguishable
  from one built locally, byte for byte.
"""

import json
import math
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.metrics import (
    GROWTH,
    RELATIVE_ERROR,
    Histogram,
    MetricsRegistry,
    bucket_bound,
    bucket_index,
    exposition_value,
    histogram_buckets,
    parse_prometheus,
    quantile_from_buckets,
    render_prometheus,
)

_SETTINGS = dict(max_examples=60, deadline=None)

#: Positive values spanning the realistic measurement range (sub-ns to
#: hours-in-seconds) plus awkward magnitudes near bucket boundaries.
_values = st.floats(
    min_value=1e-12, max_value=1e12,
    allow_nan=False, allow_infinity=False,
)
_value_lists = st.lists(_values, min_size=1, max_size=200)


def _fill(values):
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


# ----------------------------------------------------------------------
# Bucket boundary function
# ----------------------------------------------------------------------
class TestBuckets:
    def test_bound_is_pure_power(self):
        assert bucket_bound(0) == 1.0
        assert bucket_bound(16) == 2.0
        assert bucket_bound(-16) == 0.5
        assert bucket_bound(32) == 4.0

    def test_index_brackets_value(self):
        for v in (1e-9, 0.5, 1.0, 1.0000001, 2.0, 3.7, 1e6):
            i = bucket_index(v)
            assert bucket_bound(i) >= v
            assert bucket_bound(i - 1) < v

    def test_boundary_values_land_inclusive(self):
        # Bucket i covers (bound(i-1), bound(i)] — an exact boundary
        # value belongs to its own bucket, not the next one.
        for i in (-100, -1, 0, 1, 16, 160):
            assert bucket_index(bucket_bound(i)) == i

    @given(_values)
    @settings(**_SETTINGS)
    def test_index_deterministic_and_bracketing(self, v):
        i = bucket_index(v)
        assert i == bucket_index(v)
        assert bucket_bound(i) >= v
        assert bucket_bound(i - 1) < v

    def test_growth_matches_relative_error(self):
        assert GROWTH == 2.0 ** (1.0 / 16)
        assert RELATIVE_ERROR == GROWTH - 1.0


# ----------------------------------------------------------------------
# Merge associativity
# ----------------------------------------------------------------------
class TestMergeAssociativity:
    @given(_value_lists, _value_lists, _value_lists)
    @settings(**_SETTINGS)
    def test_grouping_invariant(self, a, b, c):
        ha, hb, hc = _fill(a), _fill(b), _fill(c)
        left = _fill(a).merge(_fill(b)).merge(_fill(c))      # (A+B)+C
        right = _fill(a).merge(_fill(b).merge(_fill(c)))     # A+(B+C)
        single = _fill(a + b + c)                            # one pass
        for other in (right, single):
            assert left.buckets == other.buckets
            assert left.zero == other.zero
            assert left.count == other.count
            assert left.min == other.min
            assert left.max == other.max
            for q in (0.0, 0.5, 0.95, 0.99, 1.0):
                assert left.quantile(q) == other.quantile(q)
            # Float sums agree only up to accumulation-order rounding.
            assert other.sum == pytest.approx(left.sum, rel=1e-9)
        # Merging never mutated the inputs' own observations.
        assert ha.count == len(a) and hb.count == len(b)
        assert hc.count == len(c)

    @given(_value_lists)
    @settings(**_SETTINGS)
    def test_merge_with_empty_is_identity(self, a):
        h = _fill(a)
        before = h.to_dict()
        h.merge(Histogram())
        assert h.to_dict() == before
        fresh = Histogram().merge(_fill(a))
        assert fresh.to_dict() == before


# ----------------------------------------------------------------------
# Quantile error bounds vs exact numpy percentiles
# ----------------------------------------------------------------------
class TestQuantileBounds:
    @given(_value_lists, st.floats(min_value=0.0, max_value=1.0))
    @settings(**_SETTINGS)
    def test_bounded_overshoot_never_undershoot(self, values, q):
        h = _fill(values)
        est = h.quantile(q)
        # The rank the sketch targets: ceil(q*n) clamped to [1, n] —
        # numpy's inverted_cdf computes the same rank statistic.
        exact = float(np.percentile(values, q * 100.0,
                                    method="inverted_cdf"))
        assert est >= exact or math.isclose(est, exact)
        assert est <= exact * GROWTH * (1 + 1e-12)

    def test_extremes_are_exact(self):
        h = _fill([3.0, 1.0, 2.0])
        assert h.quantile(1.0) == 3.0      # capped at exact max
        assert h.min == 1.0 and h.max == 3.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.count == 0
        assert h.to_dict()["min"] is None

    def test_nonpositive_underflow_bucket(self):
        h = _fill([-1.0, 0.0, 5.0])
        assert h.zero == 2
        assert h.count == 3
        assert h.quantile(0.5) == 0.0      # rank-2 sample is <= 0
        assert h.quantile(1.0) == 5.0


# ----------------------------------------------------------------------
# Cross-process merge bit-determinism
# ----------------------------------------------------------------------
_CHILD = r"""
import json, sys
from repro.telemetry.metrics import Histogram
values = json.loads(sys.stdin.read())
h = Histogram()
for v in values:
    h.observe(v)
sys.stdout.write(json.dumps(h.to_dict()))
"""


def _child_env():
    import os
    import pathlib

    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).parent.parent)
    return env


class TestCrossProcess:
    def test_child_histogram_is_bit_identical(self):
        rng = np.random.default_rng(7)
        values = (10.0 ** rng.uniform(-6, 3, size=500)).tolist()
        out = subprocess.run(
            [sys.executable, "-c", _CHILD],
            input=json.dumps(values), capture_output=True, text=True,
            check=True, env=_child_env(),
        )
        child = Histogram.from_dict(json.loads(out.stdout))
        local = _fill(values)
        assert child.to_dict() == local.to_dict()
        assert json.dumps(child.to_dict(), sort_keys=True) == \
            json.dumps(local.to_dict(), sort_keys=True)

    def test_parent_merge_of_child_shards_equals_single_process(self):
        rng = np.random.default_rng(11)
        values = (10.0 ** rng.uniform(-6, 3, size=600)).tolist()
        shards = [values[0:200], values[200:400], values[400:600]]
        merged = Histogram()
        for shard in shards:
            out = subprocess.run(
                [sys.executable, "-c", _CHILD],
                input=json.dumps(shard), capture_output=True,
                text=True, check=True, env=_child_env(),
            )
            merged.merge(Histogram.from_dict(json.loads(out.stdout)))
        local = _fill(values)
        assert merged.buckets == local.buckets
        assert merged.count == local.count
        assert merged.min == local.min and merged.max == local.max
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == local.quantile(q)


# ----------------------------------------------------------------------
# Registry + exposition format
# ----------------------------------------------------------------------
class TestRegistryAndExposition:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("req_total", 3, route="/x")
        reg.inc("req_total", route="/y")
        reg.set_gauge("inflight", 2.5)
        for v in (0.001, 0.002, 0.004, 1.5):
            reg.observe("lat_seconds", v, served="warm")
        other = MetricsRegistry.from_dict(reg.to_dict())
        assert other.to_dict() == reg.to_dict()
        # Merging a payload twice doubles counters and bucket counts.
        other.merge(reg.to_dict())
        assert other.counter_value("req_total", route="/x") == 6
        assert other.histogram("lat_seconds", served="warm").count == 8

    def test_exposition_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("a_total", 7, route="/v1/experiment", status="200")
        reg.set_gauge("depth", 3.0)
        for v in (0.25, 0.5, 1.0, 2.0, 4.0):
            reg.observe("lat", v, served="cold")
        text = render_prometheus(reg)
        assert "# TYPE a_total counter" in text
        assert "# TYPE lat histogram" in text
        parsed = parse_prometheus(text)
        assert exposition_value(
            parsed, "a_total", route="/v1/experiment", status="200"
        ) == 7.0
        assert exposition_value(parsed, "depth") == 3.0
        assert exposition_value(parsed, "lat_count", served="cold") == 5.0
        buckets = histogram_buckets(parsed, "lat", served="cold")
        assert buckets[-1] == (math.inf, 5)
        # Cumulative counts are monotone and end at the total.
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)
        # The scrape-side quantile matches the in-process sketch's
        # bucket boundary (no max cap through the wire).
        q = quantile_from_buckets(buckets, 0.5)
        h = reg.histogram("lat", served="cold")
        rank_bound = sorted(h.buckets)[2]  # rank 3 of 5
        assert q == bucket_bound(rank_bound)

    def test_label_escaping_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("weird_total", 1, path='a"b\\c\nd')
        parsed = parse_prometheus(render_prometheus(reg))
        assert exposition_value(
            parsed, "weird_total", path='a"b\\c\nd'
        ) == 1.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a sample line at all }{\n")

    def test_sync_counter_is_absolute(self):
        reg = MetricsRegistry()
        reg.sync_counter("stat", 5)
        reg.sync_counter("stat", 9)
        assert reg.counter_value("stat") == 9
        assert reg.counter_total("stat") == 9
