"""Unit tests of the chunked columnar trace store.

The store is the load-bearing wall of the out-of-core pipeline: every
other chunked component assumes deterministic chunk boundaries, faithful
round-trips through spill segments, and a ledger that tracks sealed
bytes exactly.  These tests pin each of those contracts directly.
"""

import pickle

import numpy as np
import pytest

from repro.common import config as cfgmod
from repro.common.chunkstore import ChunkStore, ledger_bytes

DTYPES = (np.dtype(np.int64), np.dtype(np.int16), np.dtype(bool))


def _cols(n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 1 << 40, n).astype(np.int64),
        rng.integers(0, 8, n).astype(np.int16),
        (rng.random(n) < 0.5),
    )


def _fill(store, cols, piece_sizes):
    pos = 0
    for sz in piece_sizes:
        store.append(*(c[pos : pos + sz] for c in cols))
        pos += sz
    assert pos == cols[0].size


def test_roundtrip_dense_and_chunked():
    cols = _cols(1000)
    store = ChunkStore(DTYPES, chunk_rows=128)
    _fill(store, cols, [1000])
    assert store.n_rows == 1000
    out = store.columns()
    for a, b in zip(cols, out):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
    # Chunk sizes: full chunks then the open tail.
    sizes = [c[0].size for c in store.iter_chunks()]
    assert sizes == [128] * 7 + [104]


def test_chunk_boundaries_independent_of_append_pattern():
    cols = _cols(500, seed=1)
    patterns = [[500], [1] * 500, [499, 1], [7] * 71 + [3], [250, 250]]
    reference = None
    for pattern in patterns:
        store = ChunkStore(DTYPES, chunk_rows=64)
        _fill(store, cols, pattern)
        chunks = [tuple(a.copy() for a in c) for c in store.iter_chunks()]
        sizes = [c[0].size for c in chunks]
        assert sizes == [64] * 7 + [52], pattern
        if reference is None:
            reference = chunks
        else:
            for ra, ca in zip(reference, chunks):
                for x, y in zip(ra, ca):
                    np.testing.assert_array_equal(x, y)


def test_zero_length_append_is_noop():
    store = ChunkStore(DTYPES, chunk_rows=16)
    store.append(*_cols(0))
    assert store.n_rows == 0
    assert list(store.iter_chunks()) == []
    assert all(c.size == 0 for c in store.columns())
    cols = _cols(10, seed=2)
    store.append(*cols)
    store.append(*_cols(0))
    np.testing.assert_array_equal(store.columns()[0], cols[0])


def test_column_validation():
    store = ChunkStore(DTYPES, chunk_rows=16)
    with pytest.raises(ValueError):
        store.append(np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        store.append(
            np.zeros(3, dtype=np.int64),
            np.zeros(2, dtype=np.int16),
            np.zeros(3, dtype=bool),
        )
    with pytest.raises(ValueError):
        ChunkStore(DTYPES, chunk_rows=0)


def test_spill_and_reload_preserves_stream():
    cols = _cols(4000, seed=3)
    # Budget of one chunk's bytes: nearly everything sealed must spill.
    rowbytes = sum(d.itemsize for d in DTYPES)
    store = ChunkStore(DTYPES, chunk_rows=256, budget_bytes=256 * rowbytes)
    _fill(store, cols, [777, 777, 777, 777, 892])
    spilled = sum(1 for c in store._sealed if not c.in_memory)
    assert spilled >= 13  # 15 sealed chunks, at most ~1 in memory
    for a, b in zip(cols, store.columns()):
        np.testing.assert_array_equal(a, b)
    # Re-iteration works after spill (chunks stay on disk).
    sizes = [c[0].size for c in store.iter_chunks()]
    assert sizes == [256] * 15 + [160]
    sizes2 = [c[0].size for c in store.iter_chunks()]
    assert sizes == sizes2


def test_ledger_accounting_and_release():
    base = ledger_bytes()
    store = ChunkStore(DTYPES, chunk_rows=100, budget_bytes=0)
    _fill(store, _cols(1000, seed=4), [1000])
    sealed_bytes = sum(c.nbytes for c in store._sealed)
    assert sealed_bytes > 0
    assert ledger_bytes() == base + sealed_bytes
    del store
    assert ledger_bytes() == base


def test_budget_zero_disables_spilling():
    store = ChunkStore(DTYPES, chunk_rows=64, budget_bytes=0)
    _fill(store, _cols(1000, seed=5), [1000])
    assert all(c.in_memory for c in store._sealed)


def test_budget_spills_other_stores_in_creation_order():
    rowbytes = sum(d.itemsize for d in DTYPES)
    older = ChunkStore(DTYPES, chunk_rows=64, budget_bytes=0)
    _fill(older, _cols(128, seed=6), [128])
    assert all(c.in_memory for c in older._sealed)
    # The newer store's budget is one chunk: its first seal pushes the
    # ledger over, it spills itself dry, then reaches across to the
    # older store's resident chunks.
    newer = ChunkStore(DTYPES, chunk_rows=64, budget_bytes=64 * rowbytes)
    _fill(newer, _cols(256, seed=7), [256])
    assert not all(c.in_memory for c in newer._sealed)
    assert not all(c.in_memory for c in older._sealed)
    for a, b in zip(_cols(128, seed=6), older.columns()):
        np.testing.assert_array_equal(a, b)


def test_pickle_roundtrip_materializes():
    cols = _cols(300, seed=8)
    rowbytes = sum(d.itemsize for d in DTYPES)
    store = ChunkStore(DTYPES, chunk_rows=32, budget_bytes=32 * rowbytes)
    _fill(store, cols, [300])
    clone = pickle.loads(pickle.dumps(store))
    assert clone.n_rows == 300
    for a, b in zip(cols, clone.columns()):
        np.testing.assert_array_equal(a, b)
    assert clone.chunk_rows == store.chunk_rows


def test_config_defaults_resolve_from_override():
    with cfgmod.override(trace_chunk_rows=77, trace_budget=12345):
        store = ChunkStore(DTYPES)
    assert store.chunk_rows == 77
    assert store.budget_bytes == 12345
