"""The performance observatory: store, analysis, span diff, CLI.

Covers the acceptance contract end to end: a synthetic 10x regression
injected into a seeded history trips ``runner perf gate`` (nonzero
exit) while a clean replay of the same history passes, and span-diff
tables are bit-deterministic given identical inputs.
"""

import json

import pytest

from repro.perfwatch import (
    GateParams,
    PerfHistory,
    SessionRecord,
    detect_regressions,
    diff_spans,
    diff_traces,
    scan_changepoints,
    slower_spans,
    span_diff_table,
)
from repro.perfwatch.analysis import robust_sigma
from repro.perfwatch.store import SCHEMA_VERSION, environment_tags


def make_session(value, ts, metric="bench/t", source="bench",
                 extra=None, scale="small"):
    metrics = {metric: value}
    if extra:
        metrics.update(extra)
    return SessionRecord(source=source, metrics=metrics, ts=ts,
                         scale=scale).stamp()


def seed_history(path, values, metric="bench/t", **kwargs):
    history = PerfHistory(path)
    for i, value in enumerate(values):
        history.append(
            make_session(value, f"2026-07-{i + 1:02d}T00:00:00+0000",
                         metric=metric, **kwargs)
        )
    return history


CLEAN = [1.0, 1.02, 0.98, 1.01, 0.99, 1.03, 0.97, 1.0]


class TestStore:
    def test_append_read_roundtrip(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        record = SessionRecord(
            source="bench", metrics={"bench/a": 1.5, "bench/b": 2.0},
            ts="2026-08-01T00:00:00+0000", scale="small",
            git="abc123", host="ci", config="deadbeef",
            meta={"note": "seed"},
        ).stamp()
        assert history.append(record)
        [loaded] = history.sessions()
        assert loaded.metrics == {"bench/a": 1.5, "bench/b": 2.0}
        assert loaded.session == record.session
        assert loaded.git == "abc123"
        assert loaded.meta == {"note": "seed"}

    def test_append_is_idempotent_per_session(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", [1.0, 2.0])
        again = make_session(1.0, "2026-07-01T00:00:00+0000")
        assert not history.append(again)
        assert len(history.sessions()) == 2

    def test_content_key_ignores_environment_tags(self):
        a = make_session(1.0, "2026-07-01T00:00:00+0000")
        b = SessionRecord(source="bench", metrics={"bench/t": 1.0},
                          ts="2026-07-01T00:00:00+0000", scale="small",
                          git="other", host="elsewhere").stamp()
        assert a.session == b.session

    def test_unknown_schema_version_is_an_error(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"v": SCHEMA_VERSION + 1,
                                 "session": "x", "metrics": {}}) + "\n")
            fh.write(json.dumps({"v": SCHEMA_VERSION, "session": "y",
                                 "source": "bench", "ts": "t",
                                 "metrics": {}}) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            PerfHistory(path).sessions()

    def test_torn_final_line_is_forgiven(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0, 2.0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "session": "torn')  # writer died here
        assert len(PerfHistory(path).sessions()) == 2

    def test_malformed_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
        seed_history(path, [2.0])  # valid line lands after the bad one
        with pytest.raises(ValueError, match="malformed"):
            PerfHistory(path).sessions()

    def test_missing_file_reads_empty(self, tmp_path):
        assert PerfHistory(tmp_path / "none.jsonl").sessions() == []

    def test_no_lock_litter_after_append(self, tmp_path):
        path = tmp_path / "h.jsonl"
        seed_history(path, [1.0])
        assert not (tmp_path / "h.jsonl.lock").exists()

    def test_series_prefix_filter(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        history.append(make_session(
            1.0, "2026-07-01T00:00:00+0000",
            extra={"service/warm_p50_ms": 3.0},
        ))
        series = history.series("service/")
        assert list(series) == ["service/warm_p50_ms"]
        assert [v for _, v in series["service/warm_p50_ms"]] == [3.0]

    def test_environment_tags_shape(self):
        tags = environment_tags()
        assert set(tags) == {"git", "host", "config"}
        assert tags["host"]
        assert len(tags["config"]) == 8

    def test_config_fingerprint_tracks_config(self):
        from repro.common.config import override
        from repro.perfwatch.store import config_fingerprint

        base = config_fingerprint()
        with override(gpu_batch=False):
            assert config_fingerprint() != base
        assert config_fingerprint() == base


class TestRegressionDetection:
    def test_clean_history_passes(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", CLEAN + [1.01])
        report = detect_regressions(history)
        assert report.ok and report.exit_code == 0
        assert report.checked == 1

    def test_10x_injection_fails(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", CLEAN + [10.0])
        report = detect_regressions(history)
        assert not report.ok and report.exit_code == 1
        [bad] = report.regressions
        assert bad.metric == "bench/t" and bad.status == "fail"
        assert bad.actual == 10.0

    def test_improvement_passes(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", CLEAN + [0.1])
        assert detect_regressions(history).ok

    def test_missing_tracked_metric_fails_loudly(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", CLEAN)
        history.append(SessionRecord(
            source="bench", metrics={"bench/other": 1.0},
            ts="2026-08-01T00:00:00+0000", scale="small",
        ).stamp())
        report = detect_regressions(history)
        assert not report.ok
        [missing] = [e for e in report.drift.entries
                     if e.status == "missing"]
        assert missing.metric == "bench/t"

    def test_metric_absent_from_recent_sessions_not_required(
        self, tmp_path
    ):
        # bench/t has baseline depth but vanished from the recent
        # same-source sessions: retired, not regressed.
        history = seed_history(tmp_path / "h.jsonl", CLEAN[:4])
        for i in range(4):
            history.append(SessionRecord(
                source="bench", metrics={"bench/new": 1.0 + i / 100},
                ts=f"2026-08-{i + 1:02d}T00:00:00+0000", scale="small",
            ).stamp())
        assert detect_regressions(history).ok

    def test_other_sources_never_required_of_candidate(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", CLEAN,
                               metric="service/warm_p50_ms",
                               source="service")
        history.append(make_session(1.0, "2026-08-01T00:00:00+0000"))
        report = detect_regressions(history)
        assert report.ok  # a bench session owes no service metrics

    def test_thin_baseline_is_unchecked(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", [1.0, 1.0, 10.0])
        report = detect_regressions(history)
        assert report.ok and report.checked == 0
        assert report.unchecked == 1

    def test_zero_variance_baseline_uses_floors(self, tmp_path):
        flat = [1.0] * 8
        ok = detect_regressions(
            seed_history(tmp_path / "a.jsonl", flat + [1.1])
        )
        assert ok.ok  # 10% above median, within 4 * (5% rel floor)
        bad = detect_regressions(
            seed_history(tmp_path / "b.jsonl", flat + [1.5])
        )
        assert not bad.ok

    def test_metric_prefix_filter_scopes_the_gate(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for i, v in enumerate(CLEAN + [10.0]):
            history.append(make_session(
                v, f"2026-07-{i + 1:02d}T00:00:00+0000",
                extra={"benchrss/t": 1000.0},
            ))
        assert not detect_regressions(history).ok
        scoped = detect_regressions(history, metric_prefix="benchrss/")
        assert scoped.ok

    def test_single_session_history_trivially_passes(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", [1.0])
        report = detect_regressions(history)
        assert report.ok and report.sessions == 1

    def test_new_metric_is_informational(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", CLEAN)
        history.append(make_session(
            1.0, "2026-08-01T00:00:00+0000",
            extra={"bench/fresh": 5.0},
        ))
        report = detect_regressions(history)
        assert report.ok and report.drift.n_new == 1

    def test_robust_sigma_floors(self):
        params = GateParams()
        assert robust_sigma([1.0] * 5, params) == pytest.approx(0.05)
        assert robust_sigma([0.0] * 5, params) == pytest.approx(1e-4)


class TestChangepoints:
    def test_level_shift_is_found_at_the_split(self, tmp_path):
        values = [1.0, 1.02, 0.98, 1.01] + [3.0, 3.02, 2.98, 3.01]
        history = seed_history(tmp_path / "h.jsonl", values)
        [cp] = scan_changepoints(history.series(), GateParams())
        assert cp.metric == "bench/t"
        assert 3 <= cp.index <= 4  # the shift happens at sample 4
        assert cp.before == pytest.approx(1.0, abs=0.05)
        assert cp.after == pytest.approx(3.0, abs=0.05)
        assert cp.shift_sigma > GateParams().k_sigma

    def test_flat_series_has_no_changepoints(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", [1.0] * 10)
        assert scan_changepoints(history.series(), GateParams()) == []

    def test_short_series_is_skipped(self, tmp_path):
        history = seed_history(tmp_path / "h.jsonl", [1.0, 9.0, 1.0])
        assert scan_changepoints(history.series(), GateParams()) == []


def bench_file(path, sessions):
    """Write a BENCH_timings.json-shaped file."""
    path.write_text(json.dumps(sessions, indent=2) + "\n")
    return path


def clean_bench_sessions(n=6):
    out = []
    for i in range(n):
        jitter = (i % 3 - 1) / 100.0
        tests = {
            "benchmarks/test_bench_x.py::test_a": round(1.0 + jitter, 4),
            "benchmarks/test_bench_x.py::test_b": round(2.0 - jitter, 4),
        }
        out.append({
            "timestamp": f"2026-07-{i + 1:02d}T00:00:00+0000",
            "scale": "small",
            "total_s": round(sum(tests.values()), 4),
            "tests": tests,
        })
    return out


class TestGateCLI:
    """The acceptance contract, through the real runner CLI."""

    def run(self, *argv):
        from repro.experiments.runner import main

        return main(list(argv))

    def test_clean_replay_passes_and_injected_10x_trips(
        self, tmp_path, capsys
    ):
        sessions = clean_bench_sessions()
        bench = bench_file(tmp_path / "BENCH.json", sessions)
        history = str(tmp_path / "perf-history.jsonl")
        assert self.run("perf", "record", "--bench", str(bench),
                        "--history", history) == 0
        assert self.run("perf", "gate", "--history", history,
                        "--k-sigma", "4") == 0
        out = capsys.readouterr()
        assert "PASS" in out.out

        # Tamper: one more session, every timing 10x the median.
        slow = dict(sessions[-1])
        slow["timestamp"] = "2026-08-01T00:00:00+0000"
        slow["tests"] = {k: round(v * 10, 4)
                         for k, v in sessions[-1]["tests"].items()}
        slow["total_s"] = round(sum(slow["tests"].values()), 4)
        tampered = bench_file(tmp_path / "TAMPERED.json",
                              sessions + [slow])
        assert self.run("perf", "record", "--bench", str(tampered),
                        "--history", history) == 0
        assert self.run("perf", "gate", "--history", history,
                        "--k-sigma", "4") == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out and "fail" in out.out

    def test_record_is_idempotent(self, tmp_path, capsys):
        bench = bench_file(tmp_path / "BENCH.json",
                           clean_bench_sessions())
        history = str(tmp_path / "h.jsonl")
        self.run("perf", "record", "--bench", str(bench),
                 "--history", history)
        before = (tmp_path / "h.jsonl").read_bytes()
        self.run("perf", "record", "--bench", str(bench),
                 "--history", history)
        assert (tmp_path / "h.jsonl").read_bytes() == before

    def test_record_demands_a_source(self, tmp_path):
        with pytest.raises(SystemExit):
            self.run("perf", "record", "--history",
                     str(tmp_path / "h.jsonl"))

    def test_gate_on_empty_history_passes(self, tmp_path, capsys):
        assert self.run("perf", "gate", "--history",
                        str(tmp_path / "none.jsonl")) == 0

    def test_unknown_subcommand_errors(self, capsys):
        assert self.run("perf", "bogus") == 2

    def test_trend_renders_sparklines(self, tmp_path, capsys):
        bench = bench_file(tmp_path / "BENCH.json",
                           clean_bench_sessions())
        history = str(tmp_path / "h.jsonl")
        self.run("perf", "record", "--bench", str(bench),
                 "--history", history)
        assert self.run("perf", "trend", "--history", history) == 0
        out = capsys.readouterr().out
        assert "Perf trend: bench/*" in out
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_report_markdown_is_deterministic(self, tmp_path, capsys):
        bench = bench_file(tmp_path / "BENCH.json",
                           clean_bench_sessions())
        history = str(tmp_path / "h.jsonl")
        self.run("perf", "record", "--bench", str(bench),
                 "--history", history)
        out_a, out_b = tmp_path / "a.md", tmp_path / "b.md"
        assert self.run("perf", "report", "--history", history,
                        "--out", str(out_a)) == 0
        assert self.run("perf", "report", "--history", history,
                        "--out", str(out_b)) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        text = out_a.read_text()
        assert "# Performance report" in text
        assert "## Regression gate" in text and "## Trend" in text

    def test_registry_and_trace_ingestion(self, tmp_path, capsys):
        from repro.fidelity import RunRecord, RunRegistry
        from repro.telemetry import JsonlSink

        registry = tmp_path / "runs"
        RunRegistry(registry).save(RunRecord(
            kind="run", scale="small", experiments=["fig1"],
            metrics={"fig1/x": 1.0}, durations={"fig1": 2.5},
            span_stats={"experiment": [1, 2.5], "inner": [9, 0.1]},
        ).stamp())
        trace = tmp_path / "t.jsonl"
        with JsonlSink(str(trace)) as sink:
            sink.emit({"v": 1, "ev": "span_open", "id": "s1",
                       "parent": None, "name": "run", "ts": 0.0})
            sink.emit({"v": 1, "ev": "span_close", "id": "s1",
                       "name": "run", "dur_s": 1.0, "ok": True})
        history = str(tmp_path / "h.jsonl")
        assert self.run("perf", "record", "--registry", str(registry),
                        "--trace", str(trace),
                        "--history", history) == 0
        series = PerfHistory(history).series()
        assert series["run/fig1/duration_s"][0][1] == 2.5
        assert "span/experiment/total_s" in series
        assert "span/inner/total_s" not in series  # not a tracked span
        assert series["span/run/self_s"][0][1] == 1.0

    def test_watch_once_flag_exists(self, capsys):
        with pytest.raises(SystemExit) as exc:
            self.run("watch", "--help")
        assert exc.value.code == 0
        assert "--once" in capsys.readouterr().out


def write_trace(path, spans):
    """A minimal well-formed telemetry JSONL trace."""
    lines = [{"v": 1, "ev": "meta", "clock": "perf_counter"}]
    for sid, (name, parent, dur) in enumerate(spans, 1):
        lines.append({"v": 1, "ev": "span_open", "id": f"s{sid}",
                      "parent": parent, "name": name, "ts": 0.0})
    for sid, (name, parent, dur) in reversed(
        list(enumerate(spans, 1))
    ):
        lines.append({"v": 1, "ev": "span_close", "id": f"s{sid}",
                      "name": name, "dur_s": dur, "ok": True})
    path.write_text(
        "".join(json.dumps(l, separators=(",", ":")) + "\n"
                for l in lines)
    )
    return str(path)


class TestSpanDiff:
    def test_ranking_and_alignment(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl",
                        [("run", None, 1.0), ("work", "s1", 0.6)])
        b = write_trace(tmp_path / "b.jsonl",
                        [("run", None, 3.0), ("work", "s1", 2.4)])
        deltas = diff_traces(a, b)
        assert [d.name for d in deltas] == ["work", "run"]
        work = deltas[0]
        assert work.self_a == pytest.approx(0.6)
        assert work.self_b == pytest.approx(2.4)
        assert work.d_self == pytest.approx(1.8)
        slower = slower_spans(deltas)
        assert [d.name for d in slower] == ["work", "run"]

    def test_span_only_on_one_side(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl", [("run", None, 1.0)])
        b = write_trace(tmp_path / "b.jsonl",
                        [("run", None, 1.0), ("fresh", "s1", 0.5)])
        deltas = {d.name: d for d in diff_traces(a, b)}
        assert deltas["fresh"].count_a == 0
        assert deltas["fresh"].ratio == float("inf")
        assert "inf" in deltas["fresh"].row()

    def test_tables_are_bit_deterministic(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl",
                        [("run", None, 2.0), ("work", "s1", 1.5),
                         ("load", "s1", 0.25)])
        b = write_trace(tmp_path / "b.jsonl",
                        [("run", None, 2.5), ("work", "s1", 2.2),
                         ("load", "s1", 0.1)])
        renders = {
            span_diff_table(diff_traces(a, b), "a", "b").render()
            for _ in range(3)
        }
        assert len(renders) == 1

    def test_identical_traces_diff_to_zero(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl",
                        [("run", None, 1.0), ("work", "s1", 0.5)])
        deltas = diff_traces(a, a)
        assert all(d.d_self == 0.0 and d.ratio == 1.0 for d in deltas)
        assert slower_spans(deltas) == []

    def test_diff_spans_accepts_event_lists(self):
        events = [
            {"ev": "span_open", "id": "s1", "parent": None,
             "name": "run"},
            {"ev": "span_close", "id": "s1", "name": "run",
             "dur_s": 1.0},
        ]
        slower_events = [dict(e) for e in events]
        slower_events[1] = dict(events[1], dur_s=2.0)
        [delta] = diff_spans(events, slower_events)
        assert delta.d_self == pytest.approx(1.0)

    def test_diff_cli(self, tmp_path, capsys):
        from repro.experiments.runner import main

        a = write_trace(tmp_path / "a.jsonl", [("run", None, 1.0)])
        b = write_trace(tmp_path / "b.jsonl", [("run", None, 4.0)])
        assert main(["perf", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "Span diff" in out and "slower: run" in out
