"""Tests for the assembled CPU metrics and the feature-extraction layer."""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.core.features import (
    clear_caches,
    cpu_metrics_for,
    display_label,
    feature_matrix,
    gpu_trace_for,
    suite_workloads,
)
from repro.cpusim import CodeFootprintTracer, Machine, characterize_trace


class TestCharacterizeTrace:
    def _machine(self):
        m = Machine(n_threads=2)
        a = m.array(np.arange(1000.0))

        def w(t):
            v = t.load(a, np.arange(t.tid, 1000, 2))
            t.alu(v.size)
            t.branch(10)

        m.parallel(w)
        return m

    def test_metrics_complete(self):
        met = characterize_trace(self._machine(), "demo",
                                 code_footprint_64b=7)
        assert met.name == "demo"
        assert met.code_footprint_64b == 7
        assert met.mem_refs == 1000
        assert len(met.miss_curve) == 8
        assert 0.0 <= met.miss_rate_4mb <= 1.0

    def test_feature_dicts_disjoint_keys(self):
        met = characterize_trace(self._machine(), "demo")
        mix = set(met.mix_features())
        ws = set(met.working_set_features())
        sh = set(met.sharing_features())
        assert not (mix & ws) and not (mix & sh) and not (ws & sh)
        assert set(met.all_features()) == mix | ws | sh

    def test_exact_vs_curve_close(self):
        met = characterize_trace(self._machine(), "demo")
        # Interleaved stride-2 reads: both estimators nearly agree.
        assert met.miss_rate_4mb == pytest.approx(
            met.miss_curve[4 * 1024 * 1024], abs=0.02)

    def test_interleaved_halves_share_everything(self):
        met = characterize_trace(self._machine(), "demo")
        # Threads 0/1 touch alternating doubles of the same lines.
        assert met.sharing.frac_lines_shared > 0.9


class TestCodeFootprintTracer:
    def test_counts_only_workload_frames(self):
        tracer = CodeFootprintTracer(path_filter="workloads")
        from repro.workloads.rodinia import hotspot
        with tracer:
            hotspot.cpu_sizes(SimScale.TINY)
        assert tracer.n_functions >= 1
        assert tracer.footprint_blocks() >= 1

    def test_excludes_foreign_frames(self):
        tracer = CodeFootprintTracer(path_filter="no-such-path")
        with tracer:
            sum(range(100))
        assert tracer.n_functions == 0

    def test_nested_restore(self):
        import sys
        before = sys.getprofile()
        with CodeFootprintTracer():
            pass
        assert sys.getprofile() is before


class TestFeatureLayer:
    def test_suite_workloads_dedupes(self):
        names = suite_workloads()
        assert len(names) == 24
        assert names.count("streamcluster") == 1

    def test_suite_workloads_keep_twin_if_asked(self):
        names = suite_workloads(dedupe_shared=False)
        assert "streamcluster_p" in names

    def test_display_labels(self):
        assert display_label("bfs") == "bfs(R)"
        assert display_label("vips") == "vips(P)"
        assert display_label("streamcluster") == "streamcluster(R, P)"

    def test_cpu_metrics_memoized(self):
        a = cpu_metrics_for("hotspot", SimScale.TINY)
        b = cpu_metrics_for("hotspot", SimScale.TINY)
        assert a is b

    def test_gpu_trace_memoized_per_version(self):
        t_default = gpu_trace_for("srad", SimScale.TINY)
        t_v1 = gpu_trace_for("srad", SimScale.TINY, version=1)
        assert t_default is not t_v1
        assert gpu_trace_for("srad", SimScale.TINY) is t_default

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            gpu_trace_for("bfs", SimScale.TINY, version=2)

    def test_parsec_has_no_gpu(self):
        with pytest.raises(ValueError):
            gpu_trace_for("vips", SimScale.TINY)

    def test_feature_matrix_shapes(self):
        names = ["hotspot", "bfs"]
        for subset, n_feats in (("mix", 4), ("workingset", 8), ("sharing", 5)):
            x, feats = feature_matrix(names, subset=subset,
                                      scale=SimScale.TINY)
            assert x.shape == (2, n_feats)
            assert len(feats) == n_feats

    def test_feature_matrix_all_is_union(self):
        x, feats = feature_matrix(["hotspot"], subset="all",
                                  scale=SimScale.TINY)
        assert x.shape == (1, 17)

    def test_invalid_subset(self):
        with pytest.raises(ValueError):
            feature_matrix(["bfs"], subset="bogus", scale=SimScale.TINY)
