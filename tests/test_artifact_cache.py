"""Persistent artifact cache: round-trips, key invalidation, execution skip."""

import dataclasses

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.core import artifacts, features
from repro.core.artifacts import ArtifactCache, artifact_key
from repro.cpusim.metrics import CPUMetrics
from repro.cpusim.sharing import SharingStats


def _sample_metrics() -> CPUMetrics:
    return CPUMetrics(
        name="demo",
        inst_mix={"int": 0.5, "fp": 0.25, "branch": 0.25},
        total_insts=1000,
        mem_refs=300,
        miss_curve={131072: 0.5, 262144: 0.25},
        miss_rate_4mb=0.125,
        sharing=SharingStats(10, 4, 300, 120, 2, 30, 1.5),
        data_footprint_4kb=16,
        code_footprint_64b=9,
    )


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def test_cpu_metrics_round_trip(cache):
    metrics = _sample_metrics()
    cache.put_cpu("demo", SimScale.TINY, "abc123", metrics)
    loaded = cache.get_cpu("demo", SimScale.TINY, "abc123")
    assert loaded is not None
    assert dataclasses.asdict(loaded) == dataclasses.asdict(metrics)
    # Dict keys survive the JSON round-trip as ints.
    assert all(isinstance(k, int) for k in loaded.miss_curve)
    assert loaded.all_features() == metrics.all_features()


def test_reads_refresh_mtime_for_lru(cache):
    """A hit must touch the entry or LRU pruning evicts hot artifacts."""
    import os

    metrics = _sample_metrics()
    cache.put_cpu("demo", SimScale.TINY, "abc123", metrics)
    path = cache._path("cpu", "demo", SimScale.TINY, "abc123", ".json")
    stale = 1_000_000_000.0  # 2001 — long before any test run
    os.utime(path, (stale, stale))
    assert cache.get_cpu("demo", SimScale.TINY, "abc123") is not None
    assert path.stat().st_mtime > stale


def test_missing_and_corrupt_entries_miss(cache, tmp_path):
    assert cache.get_cpu("demo", SimScale.TINY, "nothere") is None
    path = cache._path("cpu", "demo", SimScale.TINY, "bad", ".json")
    cache.root.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json", encoding="utf-8")
    assert cache.get_cpu("demo", SimScale.TINY, "bad") is None
    assert cache.get_gpu("demo", SimScale.TINY, "nothere") is None


def test_gpu_trace_round_trip(cache):
    trace = features.gpu_trace_for("nw", SimScale.TINY)
    cache.put_gpu("nw", SimScale.TINY, "k1", trace)
    loaded = cache.get_gpu("nw", SimScale.TINY, "k1")
    assert loaded is not None
    assert loaded.app_name == trace.app_name
    assert len(loaded.launches) == len(trace.launches)
    for a, b in zip(loaded.launches, trace.launches):
        assert a.kernel_name == b.kernel_name
        ta, tb = a.transactions(), b.transactions()
        assert all(np.array_equal(x, y) for x, y in zip(ta, tb))


def test_key_changes_with_config_and_source():
    base = artifact_key("cpu", "bfs", SimScale.TINY, "src-v1", {"line": 64})
    assert base == artifact_key(
        "cpu", "bfs", SimScale.TINY, "src-v1", {"line": 64}
    )
    # Any ingredient change must produce a different key.
    assert base != artifact_key("cpu", "bfs", SimScale.TINY, "src-v2", {"line": 64})
    assert base != artifact_key("cpu", "bfs", SimScale.TINY, "src-v1", {"line": 128})
    assert base != artifact_key("cpu", "bfs", SimScale.SMALL, "src-v1", {"line": 64})
    assert base != artifact_key("gpu", "bfs", SimScale.TINY, "src-v1", {"line": 64})
    assert base != artifact_key("cpu", "nw", SimScale.TINY, "src-v1", {"line": 64})


def test_stale_entry_not_matched_after_config_change(cache):
    """A cached artifact under an old config hash is simply never hit."""
    metrics = _sample_metrics()
    key_old = artifact_key("cpu", "demo", SimScale.TINY, "src", {"quantum": 100})
    cache.put_cpu("demo", SimScale.TINY, key_old, metrics)
    key_new = artifact_key("cpu", "demo", SimScale.TINY, "src", {"quantum": 200})
    assert cache.get_cpu("demo", SimScale.TINY, key_new) is None
    assert cache.get_cpu("demo", SimScale.TINY, key_old) is not None


def test_warm_cache_skips_execution(tmp_path):
    """Second run of a workload comes entirely from disk: zero executions."""
    prev = artifacts.get_artifact_cache()
    artifacts.set_artifact_cache(ArtifactCache(tmp_path / "warm"))
    try:
        features.clear_caches()
        features.EXECUTIONS.clear()
        m1 = features.cpu_metrics_for("nw", SimScale.TINY)
        t1 = features.gpu_trace_for("nw", SimScale.TINY)
        assert ("cpu", "nw", "tiny") in features.EXECUTIONS
        assert ("gpu", "nw", "tiny") in features.EXECUTIONS

        # New process simulated by dropping the in-memory memo.
        features.clear_caches()
        features.EXECUTIONS.clear()
        m2 = features.cpu_metrics_for("nw", SimScale.TINY)
        t2 = features.gpu_trace_for("nw", SimScale.TINY)
        assert features.EXECUTIONS == []
        assert m2.all_features() == m1.all_features()
        assert t2.thread_insts == t1.thread_insts
    finally:
        artifacts.set_artifact_cache(prev)
        features.clear_caches()


def test_disabled_cache_always_executes(tmp_path):
    prev = artifacts.get_artifact_cache()
    artifacts.set_artifact_cache(None)  # force off
    try:
        features.clear_caches()
        features.EXECUTIONS.clear()
        features.cpu_metrics_for("nw", SimScale.TINY)
        features.clear_caches()
        features.cpu_metrics_for("nw", SimScale.TINY)
        assert features.EXECUTIONS.count(("cpu", "nw", "tiny")) == 2
    finally:
        artifacts.set_artifact_cache(prev)
        features.clear_caches()


def test_env_disable(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert artifacts.default_cache() is None
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    c = artifacts.default_cache()
    assert c is not None and str(c.root) == "/tmp/somewhere"


def test_runner_warm_cache_skips_executions(capsys):
    """A runner invocation against a warm cache executes no workloads."""
    from repro.experiments import runner

    features.clear_caches()
    runner.main(["fig1", "--scale", "tiny"])  # fills the artifact cache

    # Fresh process simulated by dropping the in-memory memo.
    features.clear_caches()
    features.EXECUTIONS.clear()
    runner.main(["fig1", "--scale", "tiny"])
    capsys.readouterr()
    assert features.EXECUTIONS == []


def test_runner_no_cache_flag(tmp_path, capsys):
    """--no-cache turns persistence off for the run."""
    from repro.experiments import runner

    prev = artifacts.get_artifact_cache()
    artifacts.set_artifact_cache(ArtifactCache(tmp_path / "r"))
    try:
        features.clear_caches()
        features.EXECUTIONS.clear()
        runner.main(["table1", "--scale", "tiny", "--no-cache"])
        capsys.readouterr()
        assert artifacts.get_artifact_cache() is None
        assert not (tmp_path / "r").exists()
    finally:
        artifacts.set_artifact_cache(prev)
        features.clear_caches()
