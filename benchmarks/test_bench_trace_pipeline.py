"""Benchmarks of the out-of-core columnar trace pipeline.

Three timings bound the costs the chunked design trades between:

- **Cold build** — recording a multi-million-record stream into a
  :class:`ChunkStore` with no budget pressure (the common case; must
  stay within a small factor of raw array concatenation).
- **Spill overhead** — the same build under a budget that forces most
  sealed chunks through compressed npz segments, plus one full streamed
  read-back.
- **Warm load** — ``load_trace`` of the v2 columnar format vs. the
  legacy v1 per-launch layout for the same kernel trace.  v2's
  delta+packed columns must load at least as fast as v1 (it reads
  strictly fewer compressed bytes).
"""

import time

import numpy as np
import pytest

from repro.common import config as cfgmod

N_ROWS = 2_000_000
DTYPES = (np.dtype(np.int64), np.dtype(np.int32), np.dtype(bool))


def _columns(n=N_ROWS, seed=0):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 20, n) * 64).astype(np.int64)
    blocks = rng.integers(0, 1024, n).astype(np.int32)
    stores = rng.random(n) < 0.25
    return addrs, blocks, stores


@pytest.fixture(scope="module")
def columns():
    return _columns()


def _build(columns, budget_bytes, piece=65_536):
    from repro.common.chunkstore import ChunkStore

    store = ChunkStore(DTYPES, chunk_rows=1 << 18, budget_bytes=budget_bytes)
    n = columns[0].size
    for i in range(0, n, piece):
        store.append(*(c[i : i + piece] for c in columns))
    return store


def test_cold_build_overhead(columns):
    """Chunked recording vs plain list-append + concatenate."""
    t0 = time.perf_counter()
    pieces = [[], [], []]
    n = columns[0].size
    for i in range(0, n, 65_536):
        for lst, c in zip(pieces, columns):
            lst.append(c[i : i + 65_536].copy())
    dense = tuple(np.concatenate(p) for p in pieces)
    dense_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    store = _build(columns, budget_bytes=0)
    chunked_s = time.perf_counter() - t0

    assert store.n_rows == dense[0].size
    ratio = chunked_s / dense_s if dense_s else 1.0
    print(
        f"\ncold build {N_ROWS:,} rows: dense {dense_s:.3f}s, "
        f"chunked {chunked_s:.3f}s ({ratio:.1f}x)"
    )
    # Recording must not cost more than 5x raw concatenation.
    assert ratio < 5.0, f"chunked build {ratio:.1f}x slower than dense"


def test_spill_and_streamed_readback(columns):
    """Budget-forced spill, then one full streamed pass."""
    rowbytes = sum(d.itemsize for d in DTYPES)
    budget = (1 << 18) * rowbytes  # one chunk resident at a time

    t0 = time.perf_counter()
    store = _build(columns, budget_bytes=budget)
    build_s = time.perf_counter() - t0

    spilled = sum(1 for c in store._sealed if not c.in_memory)
    assert spilled >= 5, "budget should have forced most chunks out"

    t0 = time.perf_counter()
    rows = 0
    checksum = 0
    for addrs, blocks, stores in store.iter_chunks():
        rows += addrs.size
        checksum += int(addrs[0]) + int(blocks[-1])
    read_s = time.perf_counter() - t0
    assert rows == N_ROWS
    assert checksum != 0

    print(
        f"\nspill build {N_ROWS:,} rows: {build_s:.3f}s "
        f"({spilled} chunks spilled), streamed read {read_s:.3f}s"
    )
    # Spilling is compressed-disk-bound but must stay usable.
    assert build_s < 60.0
    assert read_s < 30.0


def _kernel_trace():
    """A representative launch set: mostly coalesced streaming accesses
    (what stencil/reduction kernels emit) with a random-access minority
    — the regime the v2 delta encoding is built for."""
    from repro.gpusim.trace import KernelTrace, LaunchTrace

    trace = KernelTrace(app_name="bench")
    rng = np.random.default_rng(7)
    for i in range(6):
        lt = LaunchTrace(f"k{i}", grid=(256, 1), block=(128, 1),
                         regs_per_thread=16)
        n = 300_000
        streaming = 0x10000000 + np.arange(n, dtype=np.int64) * 32
        scattered = (rng.integers(0, 1 << 20, n) * 32).astype(np.int64)
        addrs = np.where(rng.random(n) < 0.8, streaming, scattered)
        blocks = (np.arange(n, dtype=np.int64) * 256 // n).astype(np.int32)
        stores = rng.random(n) < 0.25
        lt.record_transaction_stream(addrs, blocks, stores)
        trace.launches.append(lt)
    return trace


def test_warm_load_v2_vs_v1(tmp_path):
    """The v2 columnar layout must load no slower than legacy v1."""
    from repro.gpusim.trace_io import load_trace, save_trace

    trace = _kernel_trace()
    p1, p2 = tmp_path / "t1.npz", tmp_path / "t2.npz"
    save_trace(trace, p1, version=1)
    save_trace(trace, p2)

    # Warm the page cache, then time repeated loads of each.
    load_trace(p1), load_trace(p2)

    t0 = time.perf_counter()
    for _ in range(3):
        load_trace(p1)
    v1_s = (time.perf_counter() - t0) / 3

    t0 = time.perf_counter()
    for _ in range(3):
        load_trace(p2)
    v2_s = (time.perf_counter() - t0) / 3

    size1, size2 = p1.stat().st_size, p2.stat().st_size
    print(
        f"\nwarm load: v1 {v1_s*1000:.0f}ms ({size1/1e6:.1f}MB), "
        f"v2 {v2_s*1000:.0f}ms ({size2/1e6:.1f}MB), "
        f"{v1_s/v2_s:.2f}x"
    )
    assert size2 < size1, "v2 must be smaller on disk than v1"
    # Allow 10% noise, but v2 should not be slower in the steady state.
    assert v2_s <= v1_s * 1.10, (
        f"v2 load {v2_s:.3f}s slower than v1 {v1_s:.3f}s"
    )
