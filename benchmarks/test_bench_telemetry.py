"""Guard: disabled telemetry must cost <2% on a functional run.

The instrumentation points stay in the hot layers forever, so the
disabled path has to be provably cheap.  Strategy: run a cold Rodinia
functional execution once with telemetry enabled to *count* how many
probe invocations (counters + span opens/closes) the run performs, then
measure the per-call cost of a disabled probe, and bound the total
disabled-path overhead as ``calls x cost / wall_time``.  This is robust
where a direct A/B wall-clock diff at the 2% level would be noise.

Runs under the session hook, so the timings land in
``BENCH_timings.json`` history alongside every other benchmark.
"""

import time

from repro import telemetry
from repro.common.config import override
from repro.core.features import clear_caches, gpu_trace_for

_MAX_OVERHEAD = 0.02


#: HotSpot runs fully batched (probes at launch granularity); LUD's
#: perimeter kernels fall back to the scalar engine, where the
#: per-access coalescing probes fire — together they exercise both
#: probe densities.
_WORKLOADS = ("hotspot", "lud")


def _cold_run(scale):
    clear_caches()
    t0 = time.perf_counter()
    traces = [gpu_trace_for(name, scale) for name in _WORKLOADS]
    return time.perf_counter() - t0, traces


def test_disabled_telemetry_overhead(scale):
    with override(cache=False):  # force actual execution, twice
        assert not telemetry.active()
        t_disabled, traces_off = _cold_run(scale)

        assert telemetry.start(telemetry.MemorySink())
        try:
            t_enabled, traces_on = _cold_run(scale)
        finally:
            snapshot = telemetry.stop()
    clear_caches()

    # Telemetry must observe, never perturb.
    for off, on in zip(traces_off, traces_on):
        assert on.thread_insts == off.thread_insts
        assert on.n_transactions == off.n_transactions

    calls = snapshot["api_calls"]
    assert calls > 0, "instrumentation never fired on a functional run"

    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        telemetry.count("bench.noop")
    per_call = (time.perf_counter() - t0) / n

    overhead = calls * per_call / t_disabled
    print(
        f"\n{calls} probe calls x {per_call * 1e9:.0f} ns disabled cost "
        f"over a {t_disabled:.2f}s run (enabled: {t_enabled:.2f}s): "
        f"{overhead:.4%} overhead"
    )
    assert overhead < _MAX_OVERHEAD, (
        f"disabled telemetry path costs {overhead:.2%} of a functional "
        f"run, budget is {_MAX_OVERHEAD:.0%}"
    )
