"""Load benchmark of the experiment service (:mod:`repro.service`).

The service exists to amortize cold experiment executions: a warm hit
is a cache read plus HTTP framing, so it must be dramatically cheaper
than the execution it replaces, and M identical concurrent cold
requests must cost exactly one execution (coalescing).  Both claims
are asserted here with the shared load generator
(:func:`repro.service.run_load`) so their trajectory lands in
``BENCH_timings.json``:

- ``test_warm_vs_cold_speedup`` — warm p50 must be >= 50x faster than
  the cold execution it short-circuits, at SMALL scale.
- ``test_coalescing_collapses_identical_cold_requests`` — N identical
  concurrent cold requests -> one execution, N identical payloads.
"""

from repro.api import ExperimentRequest
from repro.common.config import SimScale
from repro.service import ServiceClient, run_load, spawn_service
from repro.service.client import percentile

#: The SMALL-scale experiment the acceptance bar is measured on.
_EXPERIMENT = "table1"
_WARM_REQUESTS = 48
_WARM_CLIENTS = 4
_COALESCE_CLIENTS = 6


def test_warm_vs_cold_speedup(scale, tmp_path):
    req = ExperimentRequest(_EXPERIMENT, SimScale.SMALL)
    with spawn_service(
        port=0, workers=1, queue_limit=8,
        cache_dir=str(tmp_path / "cache"), registry_dir="",
    ) as service:
        with ServiceClient(service.host, service.port) as client:
            cold = client.submit(req)
        assert cold.ok and cold.served == "cold"
        report = run_load(
            service.host, service.port,
            [req] * _WARM_REQUESTS, clients=_WARM_CLIENTS,
        )
    assert report.errors == 0
    warm = report.by_served("warm")
    assert len(warm) == _WARM_REQUESTS  # every repeat hit the cache
    warm_p50 = percentile(warm, 50)
    warm_p99 = percentile(warm, 99)
    speedup = cold.latency_s / warm_p50
    print(
        f"\n[{_EXPERIMENT}@small] cold {cold.latency_s * 1e3:.1f} ms, "
        f"warm p50 {warm_p50 * 1e3:.2f} ms / p99 {warm_p99 * 1e3:.2f} ms "
        f"({_WARM_CLIENTS} clients): {speedup:.0f}x"
    )
    print(report.table().render())
    assert speedup >= 50.0, (
        f"warm hits only {speedup:.1f}x faster than cold "
        f"({warm_p50 * 1e3:.2f} ms vs {cold.latency_s * 1e3:.1f} ms)"
    )


def test_coalescing_collapses_identical_cold_requests(scale, tmp_path):
    req = ExperimentRequest(_EXPERIMENT, SimScale.SMALL)
    registry = tmp_path / "registry"
    with spawn_service(
        port=0, workers=2, queue_limit=8,
        cache_dir=str(tmp_path / "cache"), registry_dir=str(registry),
    ) as service:
        report = run_load(
            service.host, service.port,
            [req] * _COALESCE_CLIENTS, clients=_COALESCE_CLIENTS,
        )
        snap = service.stats.snapshot()
    assert report.errors == 0 and report.rejected == 0
    # Exactly one execution: one cold leader, one registry record (the
    # worker writes one per execution), everyone else coalesced onto it.
    assert snap["cold"] == 1
    assert snap["coalesced"] == _COALESCE_CLIENTS - 1
    assert len(list(registry.glob("experiment-*.json"))) == 1
    # ... and every requester got the same bytes.
    bodies = {r.text for r in report.replies if r.ok}
    assert len(bodies) == 1
    print(
        f"\n[{_EXPERIMENT}@small] {_COALESCE_CLIENTS} identical concurrent "
        f"requests -> 1 execution "
        f"(coalescing ratio {report.coalescing_ratio():.3f})"
    )
    print(report.table().render())
