"""Load benchmark of the experiment service (:mod:`repro.service`).

The service exists to amortize cold experiment executions: a warm hit
is a cache read plus HTTP framing, so it must be dramatically cheaper
than the execution it replaces, and M identical concurrent cold
requests must cost exactly one execution (coalescing).  Both claims
are asserted here with the shared load generator
(:func:`repro.service.run_load`) so their trajectory lands in
``BENCH_timings.json``:

- ``test_warm_vs_cold_speedup`` — warm p50 must be >= 50x faster than
  the cold execution it short-circuits, at SMALL scale.
- ``test_coalescing_collapses_identical_cold_requests`` — N identical
  concurrent cold requests -> one execution, N identical payloads.
- ``test_observability_overhead_on_warm_path`` — the per-request
  observability work (request id, metrics samples, access-log line)
  must stay under 3% of the measured warm p50.
"""

import time

from repro.api import ExperimentRequest
from repro.common.config import SimScale
from repro.service import ServiceClient, run_load, spawn_service
from repro.service.client import percentile

#: The SMALL-scale experiment the acceptance bar is measured on.
_EXPERIMENT = "table1"
_WARM_REQUESTS = 48
_WARM_CLIENTS = 4
_COALESCE_CLIENTS = 6


def test_warm_vs_cold_speedup(scale, tmp_path):
    req = ExperimentRequest(_EXPERIMENT, SimScale.SMALL)
    with spawn_service(
        port=0, workers=1, queue_limit=8,
        cache_dir=str(tmp_path / "cache"), registry_dir="",
    ) as service:
        with ServiceClient(service.host, service.port) as client:
            cold = client.submit(req)
        assert cold.ok and cold.served == "cold"
        report = run_load(
            service.host, service.port,
            [req] * _WARM_REQUESTS, clients=_WARM_CLIENTS,
        )
    assert report.errors == 0
    warm = report.by_served("warm")
    assert len(warm) == _WARM_REQUESTS  # every repeat hit the cache
    warm_p50 = percentile(warm, 50)
    warm_p99 = percentile(warm, 99)
    speedup = cold.latency_s / warm_p50
    print(
        f"\n[{_EXPERIMENT}@small] cold {cold.latency_s * 1e3:.1f} ms, "
        f"warm p50 {warm_p50 * 1e3:.2f} ms / p99 {warm_p99 * 1e3:.2f} ms "
        f"({_WARM_CLIENTS} clients): {speedup:.0f}x"
    )
    print(report.table().render())
    assert speedup >= 50.0, (
        f"warm hits only {speedup:.1f}x faster than cold "
        f"({warm_p50 * 1e3:.2f} ms vs {cold.latency_s * 1e3:.1f} ms)"
    )


def test_coalescing_collapses_identical_cold_requests(scale, tmp_path):
    req = ExperimentRequest(_EXPERIMENT, SimScale.SMALL)
    registry = tmp_path / "registry"
    with spawn_service(
        port=0, workers=2, queue_limit=8,
        cache_dir=str(tmp_path / "cache"), registry_dir=str(registry),
    ) as service:
        report = run_load(
            service.host, service.port,
            [req] * _COALESCE_CLIENTS, clients=_COALESCE_CLIENTS,
        )
        snap = service.stats.snapshot()
    assert report.errors == 0 and report.rejected == 0
    # Exactly one execution: one cold leader, one registry record (the
    # worker writes one per execution), everyone else coalesced onto it.
    assert snap["cold"] == 1
    assert snap["coalesced"] == _COALESCE_CLIENTS - 1
    assert len(list(registry.glob("experiment-*.json"))) == 1
    # ... and every requester got the same bytes.
    bodies = {r.text for r in report.replies if r.ok}
    assert len(bodies) == 1
    print(
        f"\n[{_EXPERIMENT}@small] {_COALESCE_CLIENTS} identical concurrent "
        f"requests -> 1 execution "
        f"(coalescing ratio {report.coalescing_ratio():.3f})"
    )
    print(report.table().render())


def test_observability_overhead_on_warm_path(scale, tmp_path):
    """The tax every warm hit pays for observability, vs what it buys.

    Per request the service generates one id, records one latency
    sample per family, bumps counters, and emits one access-log line.
    Micro-time that exact recording path against a live service's
    measured warm p50: the ratio is the metrics-path overhead, and the
    bar is <3% so observability never becomes the warm path's cost.
    """
    req = ExperimentRequest(_EXPERIMENT, SimScale.SMALL)
    rounds = 2000
    with spawn_service(
        port=0, workers=1, queue_limit=8,
        cache_dir=str(tmp_path / "cache"), registry_dir="",
        access_log=str(tmp_path / "access.jsonl"),
    ) as service:
        with ServiceClient(service.host, service.port) as client:
            assert client.submit(req).served == "cold"
        report = run_load(
            service.host, service.port,
            [req] * _WARM_REQUESTS, clients=_WARM_CLIENTS,
        )
        obs = service.obs
        t0 = time.perf_counter()
        for _ in range(rounds):
            rid = obs.new_request_id()
            obs.observe_http(
                "/v1/experiment", "POST", 200, 0.0012, rid,
                served="warm", experiment=_EXPERIMENT, scale="small",
            )
            obs.observe_served("warm", 0.0012)
        per_request_s = (time.perf_counter() - t0) / rounds
    assert report.errors == 0
    warm_p50 = percentile(report.by_served("warm"), 50)
    overhead = per_request_s / warm_p50
    print(
        f"\n[{_EXPERIMENT}@small] observability "
        f"{per_request_s * 1e6:.1f} us/request vs warm p50 "
        f"{warm_p50 * 1e3:.3f} ms: {overhead:.2%} overhead"
    )
    assert overhead < 0.03, (
        f"metrics path costs {overhead:.2%} of a warm hit "
        f"({per_request_s * 1e6:.1f} us vs {warm_p50 * 1e3:.3f} ms p50)"
    )
