"""Micro-benchmark of traced launch plans (:mod:`repro.gpusim.plans`).

Repeat launches of a plannable kernel replay a recorded whole-batch
schedule instead of re-interpreting the DSL; this is the perf case the
plan layer exists for, so warm replay must beat batch interpretation by
at least 3x on a launch-heavy sequence.  Also times hotspot and srad —
the paper's iterative stencils, dominated by repeat launches of one
kernel — cold (trace + replay) and warm (pure replay) so the plan
cache's trajectory lands in ``BENCH_timings.json``.
"""

import time

import numpy as np

from repro.common.config import SimScale, override
from repro.core import artifacts
from repro.gpusim import GPU, clear_plans
from repro.workloads import base as wl

_BLOCKS = 256
_THREADS = 128
_N = _BLOCKS * _THREADS
_LAUNCHES = 20


def _stream_kernel(ctx, src, dst, s):
    """Launch-heavy steady state: load, fused arithmetic, masked store."""
    sm = ctx.shared((ctx.nthreads,), np.float32)
    i = ctx.gtid
    with ctx.masked(i < _N - 32):
        v = ctx.load(src, i)
        ctx.store(sm, ctx.tidx, v)
        ctx.sync()
        w = ctx.load(sm, (ctx.tidx + 1) % ctx.nthreads)
        acc = v * s + w * 0.5
        ctx.store(dst, i, np.where(ctx.mask, acc, 0.0))


def _time_launches(plan: bool) -> tuple:
    with override(gpu_plan=plan):
        gpu = GPU()
        src = gpu.to_device(np.sin(np.arange(_N, dtype=np.float32)))
        dst = gpu.alloc(_N, dtype=np.float32)
        gpu.launch(_stream_kernel, _BLOCKS, _THREADS, src, dst, 1.25)  # warm
        t0 = time.perf_counter()
        for _ in range(_LAUNCHES):
            gpu.launch(_stream_kernel, _BLOCKS, _THREADS, src, dst, 1.25)
        elapsed = time.perf_counter() - t0
        return elapsed, gpu.trace, dst.to_host()


def test_plan_replay_speedup():
    prev = artifacts.get_artifact_cache()
    artifacts.set_artifact_cache(None)
    try:
        clear_plans()
        plan_s, plan_trace, plan_out = _time_launches(plan=True)
        clear_plans()
        batch_s, batch_trace, batch_out = _time_launches(plan=False)
    finally:
        artifacts.set_artifact_cache(prev)

    # Same work: identical trace totals and device results.
    np.testing.assert_array_equal(plan_out, batch_out)
    assert plan_trace.thread_insts == batch_trace.thread_insts
    assert plan_trace.n_transactions == batch_trace.n_transactions

    speedup = batch_s / plan_s
    print(
        f"\nreplay {plan_s * 1e3:.1f} ms vs interpret {batch_s * 1e3:.1f} ms"
        f" over {_LAUNCHES} launches x {_BLOCKS} blocks: {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"plan replay only {speedup:.2f}x faster "
        f"({plan_s:.3f}s vs {batch_s:.3f}s)"
    )


def _time_workload(name: str, scale: SimScale, plan: bool) -> float:
    with override(gpu_plan=plan):
        gpu = GPU(app_name=name)
        t0 = time.perf_counter()
        wl.get(name).gpu_fn(gpu, scale)
        return time.perf_counter() - t0


def test_stencil_workloads_plan_speedup(scale):
    """Hotspot and srad: cold (trace) and warm (replay) vs interpret."""
    wl.load_all()
    prev = artifacts.get_artifact_cache()
    artifacts.set_artifact_cache(None)
    try:
        for name in ("hotspot", "srad"):
            clear_plans()
            cold_s = _time_workload(name, scale, plan=True)
            warm_s = _time_workload(name, scale, plan=True)
            clear_plans()
            batch_s = _time_workload(name, scale, plan=False)
            speedup = batch_s / warm_s
            print(
                f"\n{name}@{scale.value}: cold {cold_s * 1e3:.1f} ms, "
                f"warm {warm_s * 1e3:.1f} ms, interpret "
                f"{batch_s * 1e3:.1f} ms ({speedup:.1f}x warm)"
            )
            assert speedup >= 3.0, (
                f"{name} warm replay only {speedup:.2f}x faster "
                f"({warm_s:.3f}s vs {batch_s:.3f}s)"
            )
    finally:
        artifacts.set_artifact_cache(prev)
