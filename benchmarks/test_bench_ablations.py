"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation toggles one modeling decision and checks the direction of
its effect, quantifying how much the reproduction's conclusions depend
on it.
"""

import numpy as np
import pytest

from repro.common.config import SimScale
from repro.core import fcluster, linkage
from repro.core.features import feature_matrix, gpu_trace_for, suite_workloads
from repro.cpusim import Machine
from repro.cpusim.sharing import analyze_sharing
from repro.gpusim import GPUConfig, TimingModel
from repro.gpusim.memory import coalesce


def test_bank_conflict_modeling_matters_for_nw(benchmark, scale):
    """Paper (III-E): NW's diagonal strips cause copious bank conflicts."""
    trace = gpu_trace_for("nw", scale)

    def run():
        on = TimingModel(GPUConfig.sim_default()).time(trace)
        off = TimingModel(
            GPUConfig.sim_default().replace(model_bank_conflicts=False)
        ).time(trace)
        return on.cycles, off.cycles

    on_cycles, off_cycles = benchmark(run)
    assert on_cycles >= off_cycles


def test_coalescing_granularity(benchmark, scale):
    """32/64/128-byte transaction segments vs. CFD's gather traffic."""
    trace = gpu_trace_for("cfd", scale)
    addrs = np.concatenate([lt.transactions()[0] for lt in trace.launches])

    def run():
        return {seg: coalesce(addrs, segment=seg).size for seg in (32, 64, 128)}

    sizes = benchmark(run)
    assert sizes[32] >= sizes[64] >= sizes[128]


def test_interleave_quantum_sensitivity(benchmark, scale):
    """Sharing metrics should be robust to the trace-merge quantum."""
    from repro.workloads.rodinia import hotspot

    def sharing_at(quantum):
        m = Machine(quantum=quantum)
        hotspot.cpu_run(m, SimScale.TINY)
        return analyze_sharing(*m.trace()).frac_lines_shared

    def run():
        return sharing_at(16), sharing_at(256)

    fine, coarse = benchmark(run)
    # Whole-run line sharing is interleave-invariant by construction.
    assert fine == pytest.approx(coarse)


def test_linkage_method_stability(benchmark, scale):
    """Fig. 6's headline (suites overlap) should not hinge on linkage."""
    names = suite_workloads()
    x, _ = feature_matrix(names, subset="all", scale=scale)

    def run():
        out = {}
        for method in ("single", "complete", "average", "ward"):
            labels = fcluster(linkage(x, method), 8)
            out[method] = labels
        return out

    labelings = benchmark(run)
    from repro.workloads import base as wl
    for method, labels in labelings.items():
        suites = {}
        for name, c in zip(names, labels):
            suites.setdefault(int(c), set()).add(wl.get(name).meta.suite)
        assert any(len(s) == 2 for s in suites.values()), method


def test_foldover_pb_agrees_on_top_factor(benchmark, scale):
    """Enhanced (foldover) PB should rank the same dominant factors."""
    from repro.core.plackett_burman import pb_design, rank_factors
    from repro.experiments.pb_sensitivity import FACTORS, _config_for

    trace = gpu_trace_for("srad", scale)
    factor_names = [f[0] for f in FACTORS]

    def effects_for(design):
        y = np.empty(design.shape[0])
        for r in range(design.shape[0]):
            y[r] = TimingModel(_config_for(design[r])).time(trace).cycles
        return [f for f, _, _ in rank_factors(design, np.log(y), factor_names)]

    def run():
        plain = effects_for(pb_design(len(FACTORS)))
        folded = effects_for(pb_design(len(FACTORS), foldover=True))
        return plain, folded

    plain, folded = benchmark(run)
    assert set(plain[:3]) & set(folded[:3])
