"""Microbenchmarks of the substrates themselves: simulator throughput,
cache/reuse analysis speed, suffix tree construction, analysis kernels.

These quantify the cost model of the reproduction (how expensive each
pipeline stage is) — useful when choosing problem scales.
"""

import numpy as np
import pytest

from repro.core import PCA, linkage
from repro.cpusim import Machine
from repro.cpusim.cache import simulate_shared_cache
from repro.cpusim.reuse import miss_rate_curve
from repro.cpusim.sharing import analyze_sharing
from repro.gpusim import GPU
from repro.workloads.rodinia.suffixtree import SuffixTree


def test_gpusim_lane_throughput(benchmark):
    """Functional SIMT execution rate (lane-instructions/second)."""
    n = 65536

    def run():
        gpu = GPU()
        a = gpu.to_device(np.arange(n, dtype=np.float32))
        out = gpu.alloc(n)

        def k(ctx, a, out):
            i = ctx.gtid
            with ctx.masked(i < n):
                v = ctx.load(a, i)
                ctx.alu(4)
                ctx.store(out, i, v * 2 + 1)

        gpu.launch(k, n // 256, 256, a, out)
        return gpu.trace.thread_insts

    insts = benchmark(run)
    assert insts > 0


def test_cpusim_trace_throughput(benchmark):
    """Instrumented access recording rate."""
    def run():
        m = Machine()
        a = m.alloc(1 << 16)

        def w(t):
            for lo in range(0, 1 << 16, 1024):
                t.load(a, np.arange(lo, lo + 1024))

        m.serial(w)
        return m.n_accesses

    assert benchmark(run) == 1 << 16


@pytest.fixture(scope="module")
def trace_1m():
    rng = np.random.default_rng(7)
    return (rng.zipf(1.3, 300_000) % (1 << 18)) * 64


def test_exact_cache_sim_speed(benchmark, trace_1m):
    stats = benchmark.pedantic(
        simulate_shared_cache, args=(trace_1m, 4 * 1024 * 1024),
        rounds=1, iterations=1,
    )
    assert stats.accesses == trace_1m.size


def test_reuse_distance_speed(benchmark, trace_1m):
    curve = benchmark.pedantic(
        miss_rate_curve, args=(trace_1m,), rounds=1, iterations=1
    )
    assert len(curve) == 8


def test_sharing_analysis_speed(benchmark, trace_1m):
    tids = (np.arange(trace_1m.size) % 8).astype(np.int16)
    writes = np.zeros(trace_1m.size, dtype=bool)
    stats = benchmark.pedantic(
        analyze_sharing, args=(trace_1m, tids, writes), rounds=1, iterations=1
    )
    assert stats.total_accesses == trace_1m.size


def test_suffix_tree_build_speed(benchmark):
    rng = np.random.default_rng(11)
    seq = rng.integers(0, 4, 20_000).astype(np.int8)
    tree = benchmark.pedantic(SuffixTree, args=(seq,), rounds=1, iterations=1)
    assert tree.flatten().n_nodes > seq.size


def test_pca_plus_linkage_speed(benchmark):
    rng = np.random.default_rng(13)
    x = rng.normal(0, 1, (24, 17))

    def run():
        coords = PCA(n_components=5).fit_transform(x)
        return linkage(coords, "average")

    z = benchmark(run)
    assert z.shape == (23, 4)
