"""Micro-benchmarks: vectorized analytics engines vs. scalar oracles.

The headline number is the reuse-distance histogram on a >= 1M-access
synthetic trace: the batch engine must be at least 5x faster than the
scalar Fenwick walk while producing an identical histogram.  The other
benchmarks time the cache-sweep, sharing, and coherence engines on the
same trace family and assert exact agreement (speedups printed for the
record; their scalar baselines are too slow to gate tightly at this
size).
"""

import dataclasses
import time

import numpy as np
import pytest

N_ACCESSES = 1_000_000


def _synthetic_trace(n=N_ACCESSES, seed=0):
    """A Zipf-flavoured multithreaded trace: hot lines plus a long tail.

    Mirrors the structure of the real workload traces (strong reuse, a
    working set much larger than one cache set) so the batch engines'
    round counts are representative, not best-case.
    """
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 4_096, size=n)
    cold = rng.integers(0, 1 << 22, size=n)
    lines = np.where(rng.random(n) < 0.7, hot, cold).astype(np.int64)
    addrs = lines * 64 + rng.integers(0, 8, size=n) * 8
    tids = rng.integers(0, 8, size=n).astype(np.int64)
    writes = rng.random(n) < 0.3
    return addrs, tids, writes


@pytest.fixture(scope="module")
def trace():
    return _synthetic_trace()


def test_reuse_histogram_speedup(trace):
    from repro.analytics.reuse import reuse_distance_histogram_batch
    from repro.cpusim.reuse import reuse_distance_histogram_scalar

    addrs, _, _ = trace
    t0 = time.perf_counter()
    hist_s, cold_s = reuse_distance_histogram_scalar(addrs)
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    hist_b, cold_b = reuse_distance_histogram_batch(addrs)
    batch_s = time.perf_counter() - t0

    assert cold_s == cold_b
    m = max(hist_s.size, hist_b.size)
    assert np.array_equal(
        np.pad(hist_s, (0, m - hist_s.size)),
        np.pad(hist_b, (0, m - hist_b.size)),
    )
    speedup = scalar_s / batch_s
    print(
        f"\nreuse-distance {addrs.size:,} accesses: "
        f"scalar {scalar_s:.2f}s, batch {batch_s:.2f}s, {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"batch path only {speedup:.1f}x faster"


def test_miss_rate_sweep_speedup(trace):
    from repro.analytics.cache import miss_rates_exact_batch
    from repro.cpusim.cache import PAPER_CACHE_SIZES, SharedCache

    addrs, _, _ = trace
    t0 = time.perf_counter()
    got = miss_rates_exact_batch(addrs, PAPER_CACHE_SIZES)
    batch_s = time.perf_counter() - t0

    # Scalar baseline on one size only (the full 8-size scalar sweep
    # takes minutes); scale the comparison accordingly.
    size = PAPER_CACHE_SIZES[0]
    ref = SharedCache(size)
    lines = (addrs // 64).tolist()
    t0 = time.perf_counter()
    for l in lines:
        ref.access_line(l)
    scalar_one_size_s = time.perf_counter() - t0

    assert got[size] == pytest.approx(ref.stats.miss_rate, abs=0)
    est_scalar_sweep = scalar_one_size_s * len(PAPER_CACHE_SIZES)
    print(
        f"\n8-size sweep {addrs.size:,} accesses: batch {batch_s:.2f}s, "
        f"scalar est. {est_scalar_sweep:.2f}s "
        f"({est_scalar_sweep / batch_s:.1f}x)"
    )
    assert batch_s < est_scalar_sweep


def test_sharing_at_size_speedup(trace):
    from repro.cpusim.sharing import sharing_at_size, sharing_at_size_scalar

    addrs, tids, _ = trace
    size = 1 * 1024 * 1024
    t0 = time.perf_counter()
    fast = sharing_at_size(addrs, tids, size)
    batch_s = time.perf_counter() - t0

    sub = slice(0, 100_000)  # scalar baseline on a tenth of the trace
    t0 = time.perf_counter()
    ref = sharing_at_size_scalar(addrs[sub], tids[sub], size)
    scalar_sub_s = time.perf_counter() - t0

    check = sharing_at_size(addrs[sub], tids[sub], size)
    assert (check.shared_accesses, check.lifetimes, check.shared_lifetimes) \
        == (ref.shared_accesses, ref.lifetimes, ref.shared_lifetimes)
    print(
        f"\nsharing@1MB {addrs.size:,} accesses: batch {batch_s:.2f}s; "
        f"scalar {scalar_sub_s:.2f}s for 10% of the trace"
    )
    assert fast.total_accesses == addrs.size


def test_coherence_speedup(trace):
    from repro.cpusim.coherence import (
        simulate_coherent_caches,
        simulate_coherent_caches_scalar,
    )

    addrs, tids, writes = trace
    t0 = time.perf_counter()
    fast = simulate_coherent_caches(addrs, tids, writes)
    batch_s = time.perf_counter() - t0

    sub = slice(0, 100_000)
    t0 = time.perf_counter()
    ref = simulate_coherent_caches_scalar(addrs[sub], tids[sub], writes[sub])
    scalar_sub_s = time.perf_counter() - t0

    check = simulate_coherent_caches(addrs[sub], tids[sub], writes[sub])
    assert dataclasses.asdict(check) == dataclasses.asdict(ref)
    print(
        f"\ncoherence {addrs.size:,} accesses: batch {batch_s:.2f}s; "
        f"scalar {scalar_sub_s:.2f}s for 10% of the trace"
    )
    assert fast.accesses == addrs.size
