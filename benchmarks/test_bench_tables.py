"""Benchmarks regenerating Tables I, IV, and V."""

from repro.experiments import get_driver


def _run(benchmark, exp, scale, save_result):
    driver = get_driver(exp)
    result = benchmark.pedantic(driver, args=(scale,), rounds=1, iterations=1)
    return save_result(result)


def test_table1(benchmark, scale, save_result):
    res = _run(benchmark, "table1", scale, save_result)
    assert len(res.data) == 12
    dwarves = {v["dwarf"] for v in res.data.values()}
    assert {"Dense Linear Algebra", "Graph Traversal", "Structured Grid",
            "Unstructured Grid", "Dynamic Programming"} <= dwarves


def test_table4(benchmark, scale, save_result):
    res = _run(benchmark, "table4", scale, save_result)
    assert res.data["rodinia_count"] == 12
    assert res.data["parsec_count"] == 13


def test_table5(benchmark, scale, save_result):
    res = _run(benchmark, "table5", scale, save_result)
    assert len(res.data) == 13
