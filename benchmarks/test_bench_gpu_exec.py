"""Micro-benchmark of the block-batched SIMT execution engine.

Times *cold* functional executions (direct ``GPU.launch``, no artifact
cache) of a large-grid kernel under both engines and asserts the batched
path delivers the speedup the engine exists for.  Runs under the same
session hook as every other benchmark, so the two timings land in
``BENCH_timings.json`` history via this test's wall clock.
"""

import os
import time

import numpy as np
import pytest

from repro.gpusim import BLOCK_BATCHES, GPU

_BLOCKS = 512
_THREADS = 128
_N = _BLOCKS * _THREADS


def _stencil_kernel(ctx, src, dst):
    """Representative mix: shared staging, divergence, per-lane loops."""
    sm = ctx.shared((ctx.nthreads,), np.float32)
    i = ctx.gtid
    with ctx.masked(i < _N - 64):
        v = ctx.load(src, i)
        ctx.store(sm, ctx.tidx, v)
        ctx.sync()
        acc = v * 0.5
        for _ in ctx.range_(i % 3 + 1):
            acc = acc + ctx.load(sm, (ctx.tidx + 1) % ctx.nthreads)
            ctx.alu(2)
        with ctx.masked(acc > 0):
            ctx.store(dst, i, acc)
        with ctx.masked(~(acc > 0)):
            ctx.store(dst, i, -acc)


def _run(batch: bool) -> float:
    os.environ["REPRO_GPU_BATCH"] = "on" if batch else "off"
    try:
        gpu = GPU()
        src = gpu.to_device(
            np.sin(np.arange(_N, dtype=np.float32))
        )
        dst = gpu.alloc(_N, dtype=np.float32)
        t0 = time.perf_counter()
        gpu.launch(_stencil_kernel, _BLOCKS, _THREADS, src, dst)
        elapsed = time.perf_counter() - t0
        return elapsed, gpu.trace, dst.to_host()
    finally:
        os.environ.pop("REPRO_GPU_BATCH", None)


def test_batched_execution_speedup():
    del BLOCK_BATCHES[:]
    batch_s, batch_trace, batch_out = _run(batch=True)
    assert [e[1] for e in BLOCK_BATCHES] == ["batched"]
    scalar_s, scalar_trace, scalar_out = _run(batch=False)

    # Same work: identical trace totals and device results.
    np.testing.assert_array_equal(batch_out, scalar_out)
    assert batch_trace.thread_insts == scalar_trace.thread_insts
    assert batch_trace.n_transactions == scalar_trace.n_transactions

    speedup = scalar_s / batch_s
    print(
        f"\nbatched {batch_s * 1e3:.1f} ms vs scalar {scalar_s * 1e3:.1f} ms"
        f" over {_BLOCKS} blocks: {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batched engine only {speedup:.2f}x faster "
        f"({batch_s:.3f}s vs {scalar_s:.3f}s)"
    )
