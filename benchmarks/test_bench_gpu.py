"""Benchmarks regenerating the GPU-side results: Figures 1-5, Table III,
and the Plackett-Burman study, with the paper's shape assertions."""

import numpy as np
import pytest

from repro.experiments import get_driver


def _run(benchmark, exp, scale, save_result):
    driver = get_driver(exp)
    result = benchmark.pedantic(driver, args=(scale,), rounds=1, iterations=1)
    return save_result(result)


def test_fig1_ipc(benchmark, scale, save_result):
    res = _run(benchmark, "fig1", scale, save_result)
    d = res.data
    # Paper shape: compute-rich kernels scale 8->28 shaders, the
    # bandwidth/dependency-limited ones (MUMmer, BFS, LUD) do not.
    assert d["hotspot"]["ipc28"] > 2.0 * d["hotspot"]["ipc8"]
    assert d["kmeans"]["ipc28"] > 1.8 * d["kmeans"]["ipc8"]
    assert d["bfs"]["ipc28"] < 1.4 * d["bfs"]["ipc8"]
    assert d["lud"]["ipc28"] < 1.5 * d["lud"]["ipc8"]
    # IPC extremes: SRAD/HS/LC high, MUM/NW low (Fig. 1).
    top = min(d[n]["ipc28"] for n in ("hotspot", "leukocyte", "srad"))
    bottom = max(d[n]["ipc28"] for n in ("mummer", "nw"))
    assert top > 5 * bottom


def test_fig2_memmix(benchmark, scale, save_result):
    res = _run(benchmark, "fig2", scale, save_result)
    d = res.data
    assert d["bfs"]["global"] > 0.95
    assert d["cfd"]["global"] > 0.95
    assert d["kmeans"]["tex"] + d["kmeans"]["const"] > 0.8
    assert d["leukocyte"]["tex"] + d["leukocyte"]["const"] > 0.7
    assert d["heartwall"]["const"] > 0.25
    assert d["hotspot"]["shared"] > 0.5
    assert d["nw"]["shared"] > 0.5
    assert d["mummer"]["tex"] > 0.5


def test_fig3_occupancy(benchmark, scale, save_result):
    res = _run(benchmark, "fig3", scale, save_result)
    d = res.data
    assert d["bfs"]["1-8"] > 0.4
    assert d["nw"]["25-32"] == 0.0
    assert d["mummer"]["1-8"] + d["mummer"]["9-16"] > 0.4
    assert d["backprop"]["9-16"] > 0.1
    for full in ("cfd", "kmeans", "leukocyte"):
        assert d[full]["25-32"] > 0.9, full


def test_fig4_channels(benchmark, scale, save_result):
    res = _run(benchmark, "fig4", scale, save_result)
    d = res.data
    # Paper: BFS/CFD/MUMmer benefit most; Kmeans/Leukocyte barely; LUD
    # and NW modestly (shared-memory locality).
    for name in ("bfs", "cfd", "mummer"):
        assert d[name][8] > 1.5, name
    assert d["leukocyte"][8] < 1.1
    assert d["lud"][8] < 1.3
    assert d["nw"][8] < 1.4
    assert d["kmeans"][8] < d["bfs"][8]


def test_table3_versions(benchmark, scale, save_result):
    res = _run(benchmark, "table3", scale, save_result)
    d = res.data
    assert d[("srad", 2)]["ipc"] > 1.2 * d[("srad", 1)]["ipc"]
    assert d[("srad", 2)]["shared"] > d[("srad", 1)]["shared"]
    assert d[("leukocyte", 2)]["ipc"] > d[("leukocyte", 1)]["ipc"]
    assert d[("leukocyte", 2)]["global"] < 0.01
    assert d[("leukocyte", 1)]["const"] > 0.2
    # The other two named version pairs (Section III-C): tiling pays off
    # massively for LUD and NW.
    assert d[("lud", 2)]["ipc"] > 3 * d[("lud", 1)]["ipc"]
    assert d[("nw", 2)]["ipc"] > 3 * d[("nw", 1)]["ipc"]
    assert d[("lud", 2)]["shared"] > 0.5 > d[("lud", 1)]["shared"]


def test_fig5_fermi(benchmark, scale, save_result):
    res = _run(benchmark, "fig5", scale, save_result)
    d = res.data
    # Fermi beats GTX280 across the board.
    for name, r in d.items():
        assert r["shared_bias"] < 1.0, name
    # Global-heavy workloads prefer L1 bias (paper: MUM +11.6%, BFS +16.7%).
    assert d["mummer"]["l1_speedup"] > 1.03
    assert d["bfs"]["l1_speedup"] > 1.03
    # Shared-memory-tuned SRAD prefers shared bias.
    assert d["srad"]["l1_speedup"] < 1.0
    # StreamCluster and LUD show little variation (paper, Section III-D).
    assert abs(d["streamcluster"]["l1_speedup"] - 1.0) < 0.05
    assert abs(d["lud"]["l1_speedup"] - 1.0) < 0.05


def test_pb_sensitivity(benchmark, scale, save_result):
    res = _run(benchmark, "pb", scale, save_result)
    overall = res.data["overall"]
    ranked = sorted(overall, key=overall.get, reverse=True)
    # Paper: SIMD width and memory interface dominate.
    assert "simd_width" in ranked[:3]
    assert {"n_mem_channels", "bus_width_bytes", "mem_clock_ghz"} & set(ranked[:3])
    # Paper: "shared memory bank conflict, SIMD-width, and memory
    # bandwidth demonstrate similar influence ... for Needleman Wunsch".
    nw_top = {f for f, _, _ in res.data["per_workload"]["nw"][:3]}
    assert "model_bank_conflicts" in nw_top
    assert "simd_width" in nw_top
    # Paper: for SRAD the memory interface matters strongly.
    srad_top = {f for f, _, _ in res.data["per_workload"]["srad"][:3]}
    assert {"n_mem_channels", "bus_width_bytes"} & srad_top
