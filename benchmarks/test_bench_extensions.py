"""Benchmarks for the Section VII future-work extensions."""

import numpy as np
import pytest

from repro.experiments import get_driver


def _run(benchmark, exp, scale, save_result):
    driver = get_driver(exp)
    result = benchmark.pedantic(driver, args=(scale,), rounds=1, iterations=1)
    return save_result(result)


def test_ext_divergence(benchmark, scale, save_result):
    res = _run(benchmark, "ext_divergence", scale, save_result)
    d = res.data
    # Divergent workloads (BFS, NW, MUMmer) run far below full SIMD
    # efficiency; streaming kernels run at ~1.0.
    assert d["bfs"]["simd_efficiency"] < 0.5
    assert d["nw"]["simd_efficiency"] < 0.6
    assert d["cfd"]["simd_efficiency"] > 0.95
    # Perfect reconvergence only helps issue-bound divergent kernels.
    assert d["lud"]["divergence_speedup_bound"] > 1.05
    assert d["cfd"]["divergence_speedup_bound"] == pytest.approx(1.0, abs=0.05)


def test_ext_concurrent(benchmark, scale, save_result):
    res = _run(benchmark, "ext_concurrent", scale, save_result)
    d = res.data
    assert all(0.99 <= s <= 2.01 for s in d.values())
    # The complementary pair (bandwidth-bound BFS + issue-bound HotSpot)
    # must benefit more than the same-resource pair (HotSpot + Kmeans,
    # both issue-bound).
    assert d[("bfs", "hotspot")] > d[("hotspot", "kmeans")]


def test_ext_coverage(benchmark, scale, save_result):
    res = _run(benchmark, "ext_coverage", scale, save_result)
    d = res.data
    # Paper's conclusion: "many of the workloads in Rodinia and Parsec
    # are complementary" — each suite adds coverage beyond the other.
    assert d["gain_rodinia_over_parsec"] > 0.05
    assert d["gain_parsec_over_rodinia"] > 0.05
    # And a reduced representative set exists (coverage with little
    # redundancy).
    assert len(d["representative_subset"]) < 24


def test_ext_crossarch(benchmark, scale, save_result):
    res = _run(benchmark, "ext_crossarch", scale, save_result)
    d = res.data
    # CPU branchiness predicts GPU divergence (negative correlation with
    # SIMD efficiency) — the cross-architecture link the paper wants to
    # quantify.
    assert d["cpu_branch_fraction~gpu_simd_eff"] < 0.0


def test_ext_gpusharing(benchmark, scale, save_result):
    res = _run(benchmark, "ext_gpusharing", scale, save_result)
    d = res.data
    # Stencils re-read halo lines; the tracker, the leukocyte sampling
    # circles, and tree-walkers re-read lines across block territory;
    # Kmeans' texture-resident features never reach DRAM twice and
    # StreamCluster's points are strictly block-partitioned.
    assert d["hotspot"]["frac_lines_shared"] > 0.3
    assert d["heartwall"]["frac_lines_shared"] > 0.3
    assert d["mummer"]["shared_traffic_ratio"] > 0.2
    assert d["kmeans"]["frac_lines_shared"] < 0.1
    assert d["streamcluster"]["frac_lines_shared"] < 0.1


def test_ext_scheduler(benchmark, scale, save_result):
    res = _run(benchmark, "ext_scheduler", scale, save_result)
    d = res.data
    # Headline: the unified L2 makes CTA placement nearly irrelevant.
    assert d["max_speedup_with_l2"] < 1.1
    # Without the L2, chunked placement saves DRAM on the halo-sharing
    # stencils.
    assert d["hotspot"]["dram_saved_no_l2"] >= 0
    assert any(v["dram_saved_no_l2"] > 0 for k, v in d.items()
               if isinstance(v, dict))


def test_ext_workingsets(benchmark, scale, save_result):
    res = _run(benchmark, "ext_workingsets", scale, save_result)
    d = res.data
    # Loop-reuse workloads show sharp knees: StreamCluster re-scans its
    # point set per candidate, SRAD its image per iteration.
    assert len(d["streamcluster"]) >= 1
    assert len(d["srad"]) >= 1
    assert max(w["drop"] for w in d["streamcluster"]) > 0.02
    # (Random-access outliers — canneal's annealing walk, mummer's tree
    # descent — show gradual curves with no sharp working set at SMALL
    # scale, consistent with their outlier placement in Fig. 8; not
    # asserted because smaller scales shrink them into knee territory.)
    # Detected working-set sizes span a wide range across the suite.
    sizes = [w["size"] for sets in d.values() for w in sets]
    assert max(sizes) >= 8 * min(sizes)


def test_ext_sharing_size(benchmark, scale, save_result):
    res = _run(benchmark, "ext_sharing_size", scale, save_result)
    d = res.data
    for name, entry in d.items():
        ratios = [entry["by_size"][s] for s in sorted(entry["by_size"])]
        assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:])), name
        assert all(r <= entry["whole_run"] + 1e-9 for r in ratios), name
    # Sharing spectrum preserved under residency windows.
    big = max(d["canneal"]["by_size"].values())
    assert big > 0.5
    assert max(d["blackscholes"]["by_size"].values()) < 0.05


def test_ext_parsec_ports(benchmark, scale, save_result):
    res = _run(benchmark, "ext_parsec_ports", scale, save_result)
    d = res.data
    # Section V-B, quantified: the embarrassingly-parallel Parsec
    # workload ports cleanly (full warps, competitive IPC); the
    # pointer-chasing one ports but diverges like MUMmer.
    assert d["blackscholes(P)"]["simd_eff"] > 0.95
    assert d["blackscholes(P)"]["ipc28"] > d["rodinia_median_ipc"] / 4
    assert d["raytrace(P)"]["simd_eff"] < 0.8
    assert d["raytrace(P)"]["low_occ"] > 0.3
    assert d["raytrace(P)"]["ipc28"] < d["blackscholes(P)"]["ipc28"]


def test_ext_prediction(benchmark, scale, save_result):
    res = _run(benchmark, "ext_prediction", scale, save_result)
    d = res.data
    # The headline: CPU characteristics alone cannot rank GPU
    # performance; structural GPU characteristics (divergence, memory
    # mix, launch granularity) carry the signal.
    assert d["Combined"]["rho"] >= d["CPU features only"]["rho"]
    assert d["GPU structural features"]["rho"] > d["CPU features only"]["rho"] - 0.05


def test_ext_coherence(benchmark, scale, save_result):
    res = _run(benchmark, "ext_coherence", scale, save_result)
    d = res.data
    assert "canneal" in d["most_coherence_bound"]
    assert d["blackscholes"]["invals_per_kiloref"] == 0.0
    # Private caches never beat the 4 MB shared cache for the heavily
    # shared workloads (coherence misses are pure overhead).
    assert d["canneal"]["coherence_fraction"] > 0.2
    # Swaptions' invalidations are pure *false* sharing: its per-thread
    # HJM path buffers only collide at cache-line boundaries.
    assert d["swaptions"]["false_sharing_fraction"] > 0.9
