"""Benchmarks regenerating the suite-comparison results: Figures 6-12."""

import numpy as np
import pytest

from repro.experiments import get_driver
from repro.workloads import base as wl


def _run(benchmark, exp, scale, save_result):
    driver = get_driver(exp)
    result = benchmark.pedantic(driver, args=(scale,), rounds=1, iterations=1)
    return save_result(result)


def test_fig6_dendrogram(benchmark, scale, save_result):
    res = _run(benchmark, "fig6", scale, save_result)
    clusters = res.data["clusters"]
    # Paper: the suites cover similar spaces — most clusters contain
    # applications from both collections.
    suites = {}
    for name, c in clusters.items():
        suites.setdefault(c, set()).add(wl.get(name).meta.suite)
    assert any(len(s) == 2 for s in suites.values())
    # Paper: MUMmer (and Heartwall) are the most disparate workloads —
    # at least one of the two sits alone in the 8-way cut.
    singles = [members for members in _cluster_members(clusters).values()
               if len(members) == 1]
    assert any(m[0] in ("mummer", "heartwall", "bfs") for m in singles)


def _cluster_members(clusters):
    by = {}
    for name, c in clusters.items():
        by.setdefault(c, []).append(name)
    return by


def test_fig7_instruction_mix_pca(benchmark, scale, save_result):
    res = _run(benchmark, "fig7", scale, save_result)
    coords = res.data["coords"]
    assert np.isfinite(coords).all()
    # Two components of 4 standardized mix features explain most variance.
    assert sum(res.data["explained"]) > 0.6


def test_fig8_working_set_pca(benchmark, scale, save_result):
    res = _run(benchmark, "fig8", scale, save_result)
    # Paper: "MUMmer is a significant outlier, which correlates with its
    # high miss rates."
    assert "mummer" in res.data["outliers"][:5]


def test_fig9_sharing_pca(benchmark, scale, save_result):
    res = _run(benchmark, "fig9", scale, save_result)
    coords = np.asarray(res.data["coords"])
    names = res.data["names"]
    # Zero-sharing compute kernels (blackscholes, swaptions) sit close
    # together; canneal (all-shared annealing) sits far from them.
    i_bs = names.index("blackscholes")
    i_sw = names.index("swaptions")
    i_cn = names.index("canneal")
    d_close = np.linalg.norm(coords[i_bs] - coords[i_sw])
    d_far = np.linalg.norm(coords[i_bs] - coords[i_cn])
    assert d_far > d_close


def test_fig10_miss_rates(benchmark, scale, save_result):
    res = _run(benchmark, "fig10", scale, save_result)
    d = res.data
    # Paper: MUMmer has the highest miss rates (a working-set outlier).
    rank = sorted(d, key=d.get, reverse=True)
    assert rank.index("mummer") < 5
    # Canneal's pointer chasing misses more than swaptions' private math.
    assert d["canneal"] > 3 * d["swaptions"]
    assert all(0.0 <= v <= 1.0 for v in d.values())


def test_fig11_instruction_footprints(benchmark, scale, save_result):
    res = _run(benchmark, "fig11", scale, save_result)
    d = res.data
    # Paper: MUMmer has the largest code footprint in Rodinia (with the
    # bytecode proxy, Heartwall's multi-stage pipeline competes: top-2).
    rodinia = {n: v for n, v in d.items() if wl.get(n).meta.suite == "rodinia"}
    top2 = sorted(rodinia, key=rodinia.get, reverse=True)[:2]
    assert "mummer" in top2
    assert all(v > 0 for v in d.values())


def test_fig12_data_footprints(benchmark, scale, save_result):
    res = _run(benchmark, "fig12", scale, save_result)
    d = res.data
    # MUMmer's suffix tree gives it one of the largest data footprints.
    rank = sorted(d, key=d.get, reverse=True)
    assert rank.index("mummer") < 8
    assert all(v > 0 for v in d.values())
