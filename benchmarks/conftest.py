"""Benchmark-harness configuration.

Benchmarks run the paper's experiments at SMALL scale (override with
``REPRO_BENCH_SCALE=tiny|small|medium``) and write each experiment's
rendered tables to ``benchmarks/results/<id>.txt`` so the regenerated
paper data survives the run.
"""

import os
import pathlib

import pytest

from repro.common.config import SimScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> SimScale:
    return SimScale(os.environ.get("REPRO_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result):
        text = result.render()
        if result.experiment == "fig6":
            text += "\n\n" + result.data["dendrogram"]
        (RESULTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _save
