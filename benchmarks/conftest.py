"""Benchmark-harness configuration.

Benchmarks run the paper's experiments at SMALL scale (override with
``REPRO_BENCH_SCALE=tiny|small|medium``) and write each experiment's
rendered tables to ``benchmarks/results/<id>.txt`` so the regenerated
paper data survives the run.

With ``--update-bench`` (or ``REPRO_BENCH_UPDATE=1``), every
benchmark's wall-clock time is appended to
``benchmarks/BENCH_timings.json`` at session end — one record per
session with a per-test breakdown — so performance regressions across
commits show up as a trajectory, not anecdotes.  Exploratory runs
without the flag leave the history untouched.
"""

import json
import os
import pathlib
import time

import pytest

from repro.common.config import SimScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TIMINGS_PATH = pathlib.Path(__file__).parent / "BENCH_timings.json"

_timings = {}


def pytest_addoption(parser):
    parser.addoption(
        "--update-bench", action="store_true", default=False,
        help="append this session's timings to BENCH_timings.json "
             "(REPRO_BENCH_UPDATE=1 is the environment fallback)",
    )


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _timings[report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session, exitstatus):
    update = session.config.getoption("--update-bench") or (
        os.environ.get("REPRO_BENCH_UPDATE", "").strip().lower()
        in ("1", "yes", "true", "on")
    )
    if not _timings or not update:
        return
    try:
        history = json.loads(TIMINGS_PATH.read_text())
        if not isinstance(history, list):
            history = []
    except (OSError, ValueError):
        history = []
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
            "total_s": round(sum(_timings.values()), 4),
            "tests": dict(sorted(_timings.items())),
        }
    )
    TIMINGS_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="session")
def scale() -> SimScale:
    return SimScale(os.environ.get("REPRO_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result):
        # ExperimentResult.render() includes any non-tabular payload
        # (fig6's dendrogram travels in result.text).
        text = result.render()
        (RESULTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _save
