"""Benchmark-harness configuration.

Benchmarks run the paper's experiments at SMALL scale (override with
``REPRO_BENCH_SCALE=tiny|small|medium``) and write each experiment's
rendered tables to ``benchmarks/results/<id>.txt`` so the regenerated
paper data survives the run.

With ``--update-bench`` (or ``REPRO_BENCH_UPDATE=1``), the session is
appended to ``benchmarks/BENCH_timings.json`` — per-test wall clock,
**outcome** (skipped/failed benches no longer vanish from the record),
and **peak RSS**, under a cross-process file lock so concurrent
sessions both land — and dual-written into the perfwatch history
(``benchmarks/perf-history.jsonl``, or ``REPRO_PERF_HISTORY``; ``off``
disables), where ``runner perf gate|trend|report`` turn the one-shot
numbers into an analyzable trajectory (docs/PERF.md).  Exploratory runs
without the flag leave both files untouched.

The recording logic lives in :mod:`repro.perfwatch.bench` — this file
is only the pytest wiring.
"""

import os
import pathlib

import pytest

from repro.common.config import SimScale, config
from repro.perfwatch.bench import BenchRecorder, append_bench_record

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TIMINGS_PATH = pathlib.Path(__file__).parent / "BENCH_timings.json"
HISTORY_PATH = pathlib.Path(__file__).parent / "perf-history.jsonl"

_recorder = BenchRecorder(
    scale=os.environ.get("REPRO_BENCH_SCALE", "small")
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-bench", action="store_true", default=False,
        help="append this session's timings/outcomes/RSS to "
             "BENCH_timings.json and the perfwatch history "
             "(REPRO_BENCH_UPDATE=1 is the environment fallback)",
    )


def pytest_runtest_logreport(report):
    _recorder.observe(report)


def pytest_sessionfinish(session, exitstatus):
    update = session.config.getoption("--update-bench") or (
        os.environ.get("REPRO_BENCH_UPDATE", "").strip().lower()
        in ("1", "yes", "true", "on")
    )
    if _recorder.empty or not update:
        return
    from repro.perfwatch.bench import dual_write_history
    from repro.perfwatch.store import environment_tags

    tags = environment_tags()
    record = _recorder.record(tags)
    append_bench_record(TIMINGS_PATH, record)
    # Dual-write: the same session extends the analyzable trajectory.
    # REPRO_PERF_HISTORY overrides the default next-door path; "off"
    # (config().perf_history is None) disables the mirror entirely.
    env_path = os.environ.get("REPRO_PERF_HISTORY", "").strip()
    if env_path:
        history_path = config().perf_history  # None when "off"
    else:
        history_path = str(HISTORY_PATH)
    if history_path:
        dual_write_history(history_path, record, tags)


@pytest.fixture(scope="session")
def scale() -> SimScale:
    return SimScale(os.environ.get("REPRO_BENCH_SCALE", "small"))


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result):
        # ExperimentResult.render() includes any non-tabular payload
        # (fig6's dendrogram travels in result.text).
        text = result.render()
        (RESULTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _save
