"""Bring your own kernel: characterize new code with the simulator.

Implements a CUDA-style histogram kernel (a workload *not* in Rodinia)
against the SIMT DSL, verifies it, and asks the questions the paper
asks of every Rodinia kernel: memory mix, warp occupancy, scaling with
shader count, channel sensitivity — i.e., "would this benchmark add
diversity to the suite?"

    python examples/custom_kernel.py
"""

import numpy as np

from repro.common.rng import make_rng
from repro.common.tables import Table
from repro.gpusim import GPU, GPUConfig, TimingModel

N = 262_144
BINS = 64
BLOCK = 256


def histogram_kernel(ctx, data, global_hist, n, n_bins):
    """Per-block shared-memory histogram with a global merge —
    the classic privatization pattern."""
    local = ctx.shared(n_bins, dtype=np.int64, name="local_hist")
    i = ctx.gtid
    with ctx.masked(i < n):
        v = ctx.load(data, i)
        ctx.alu(2)
        bin_idx = np.clip((v * n_bins).astype(np.int64), 0, n_bins - 1)
        ctx.atomic_add(local, bin_idx, 1)
    ctx.sync()
    with ctx.masked(ctx.tidx < n_bins):
        count = ctx.load(local, np.minimum(ctx.tidx, n_bins - 1))
        ctx.atomic_add(global_hist, np.minimum(ctx.tidx, n_bins - 1), count)


def main() -> None:
    rng = make_rng("histogram-example")
    values = rng.beta(2.0, 5.0, N).astype(np.float32)

    gpu = GPU()
    data = gpu.to_device(values, name="samples")
    hist = gpu.alloc(BINS, dtype=np.int64, name="histogram")
    gpu.launch(histogram_kernel, (N + BLOCK - 1) // BLOCK, BLOCK,
               data, hist, N, BINS, regs_per_thread=14)

    expected, _ = np.histogram(values, bins=BINS, range=(0.0, 1.0))
    np.testing.assert_array_equal(hist.to_host(), expected)
    print(f"histogram of {N:,} samples verified against numpy\n")

    trace = gpu.trace
    print("Memory mix:",
          {k: f"{v:.1%}" for k, v in trace.mem_mix().items() if v > 0})
    print("Occupancy:",
          {k: f"{v:.1%}" for k, v in trace.occupancy_buckets().items()})

    table = Table("Where does it sit in Figures 1 and 4?",
                  ["Config", "IPC", "Cycles", "Bottleneck"])
    for cfg in (
        GPUConfig.sim_8sm(),
        GPUConfig.sim_default(),
        GPUConfig.sim_default().replace(n_mem_channels=4, name="sim-4ch"),
    ):
        t = TimingModel(cfg).time(trace)
        bound = max(t.bound_mix(), key=t.bound_mix().get)
        table.add_row([cfg.name, t.ipc, t.cycles, bound])
    print("\n" + table.render())


if __name__ == "__main__":
    main()
