"""Design-space exploration: which GPU parameters matter for *your* mix?

The paper's Section III-E uses Plackett-Burman screening to rank nine
architectural parameters with ~2n simulations instead of 2^n.  This
example reproduces that flow for a custom workload mix (a graph kernel,
a stencil, and a data-mining kernel), then zooms into the top factor
with a 1-D sweep — the workflow an architect would actually use.

    python examples/gpu_design_space.py
"""

import numpy as np

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core.features import gpu_trace_for
from repro.core.plackett_burman import pb_design, rank_factors
from repro.experiments.pb_sensitivity import FACTORS, _config_for
from repro.gpusim import GPUConfig, TimingModel

MIX = ["bfs", "hotspot", "kmeans"]
SCALE = SimScale.SMALL


def main() -> None:
    print(f"Workload mix: {', '.join(MIX)} (scale={SCALE.value})\n")
    traces = {name: gpu_trace_for(name, SCALE) for name in MIX}
    factor_names = [f[0] for f in FACTORS]
    design = pb_design(len(FACTORS))

    # Response: geometric-mean cycles across the mix per design run.
    responses = np.empty(design.shape[0])
    for r in range(design.shape[0]):
        model = TimingModel(_config_for(design[r]))
        cycles = [model.time(traces[n]).cycles for n in MIX]
        responses[r] = np.exp(np.mean(np.log(cycles)))
    ranked = rank_factors(design, np.log(responses), factor_names)

    table = Table("Plackett-Burman screening (12 runs, 9 factors)",
                  ["Rank", "Factor", "Effect on log-cycles", "Share"])
    for i, (name, effect, share) in enumerate(ranked, 1):
        table.add_row([i, name, effect, f"{share:.0%}"])
    print(table.render())

    # Zoom into the dominant factor with a full sweep.
    top = ranked[0][0]
    low, high = dict((f[0], (f[1], f[2])) for f in FACTORS)[top]
    print(f"\n1-D sweep of the dominant factor: {top}")
    sweep = Table(f"Sweep of {top}", ["Value"] + MIX)
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        if isinstance(low, bool):
            value = bool(round(low + frac * (high - low)))
        elif isinstance(low, int):
            value = int(round(low + frac * (high - low)))
        else:
            value = low + frac * (high - low)
        model = TimingModel(GPUConfig.sim_default().replace(**{top: value}))
        sweep.add_row([value] + [model.time(traces[n]).cycles for n in MIX])
    print(sweep.render())


if __name__ == "__main__":
    main()
