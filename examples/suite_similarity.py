"""Benchmark-suite similarity analysis (the Section IV methodology).

Characterizes a selection of Rodinia and Parsec workloads on the
instrumented CPU machine, builds the standardized feature matrix,
reduces it with PCA, and prints the dendrogram plus the redundancy
pairs (closest workloads) — how you would test whether a new benchmark
adds diversity to an existing suite.

    python examples/suite_similarity.py
"""

import numpy as np

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.core import PCA, Dendrogram, linkage
from repro.core.clustering import cophenetic_distances
from repro.core.features import display_label, feature_matrix

# A deliberately diverse subset so the example runs in ~a minute.
WORKLOADS = [
    "bfs", "hotspot", "kmeans", "mummer", "srad",        # Rodinia
    "blackscholes", "canneal", "ferret", "swaptions",    # Parsec
]
SCALE = SimScale.SMALL


def main() -> None:
    x, features = feature_matrix(WORKLOADS, subset="all", scale=SCALE)
    print(f"Characterized {len(WORKLOADS)} workloads "
          f"on {len(features)} features\n")

    pca = PCA().fit(x)
    k = pca.n_components_for_variance(0.90)
    print(f"PCA: {k} components cover "
          f"{pca.explained_variance_ratio_[:k].sum():.0%} of variance")
    coords = pca.transform(x)[:, :k]

    labels = [display_label(n) for n in WORKLOADS]
    z = linkage(coords, method="average")
    print("\n" + Dendrogram(z, labels).render(48))

    # Redundancy report: cophenetically closest pairs.
    coph = cophenetic_distances(z)
    table = Table("\nMost similar (potentially redundant) pairs",
                  ["Workload A", "Workload B", "Linkage distance"])
    pairs = [
        (labels[i], labels[j], coph[i, j])
        for i in range(len(labels)) for j in range(i + 1, len(labels))
    ]
    for a, b, d in sorted(pairs, key=lambda t: t[2])[:5]:
        table.add_row([a, b, d])
    print(table.render())


if __name__ == "__main__":
    main()
