"""The incremental-optimization "road map" (paper Section III-C).

Rodinia ships multiple versions of some benchmarks so that architects
and compiler writers can watch a workload move from unoptimized to
optimized.  This example walks all four version pairs (SRAD, Leukocyte,
LUD, Needleman-Wunsch), showing how each optimization shifts the
workload's position in the characterization space: IPC, memory mix,
bandwidth pressure, and launch count.

    python examples/optimization_journey.py
"""

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.workloads import get

SCALE = SimScale.SMALL

OPTIMIZATIONS = {
    "srad": "stage tiles + gradients in shared memory",
    "leukocyte": "persistent thread blocks; keep scores in shared memory",
    "lud": "blocked factorization through 16x16 shared tiles",
    "nw": "16x16 tiled wavefront instead of per-cell-diagonal launches",
}


def main() -> None:
    model = TimingModel(GPUConfig.sim_default())
    table = Table(
        "Incremental optimization versions (v1 = naive, v2 = released)",
        ["Benchmark", "Ver", "IPC", "Speedup", "Shared %", "Global %",
         "Launches", "DRAM MB"],
    )
    for bench, what in OPTIMIZATIONS.items():
        defn = get(bench)
        timings = {}
        for version in (1, 2):
            gpu = GPU()
            result = defn.gpu_versions[version](gpu, SCALE)
            defn.check_gpu(result, SCALE)       # both must stay correct
            trace = gpu.trace
            timing = model.time(trace)
            timings[version] = timing
            mix = trace.mem_mix()
            table.add_row([
                bench, f"v{version}", timing.ipc,
                timings[version].cycles and timings[1].cycles / timing.cycles,
                mix["shared"], mix["global"],
                trace.n_launches, timing.dram_bytes / 1e6,
            ])
        print(f"{bench}: {what}")
    print()
    print(table.render())
    print("\nEvery v1/v2 pair computes identical results (checked against")
    print("the numpy reference) — only the mapping to the machine differs.")
    print("Note Leukocyte: the persistent-block version improves IPC and")
    print("removes global traffic (Table III's metrics), but at scaled-down")
    print("frame sizes its dilation apron is recomputed per strip, so total")
    print("cycles regress — the tradeoff only pays off at the paper's")
    print("219x640 frames, where each persistent block slides over many")
    print("strips.")


if __name__ == "__main__":
    main()
