"""Collect-once / analyze-forever: the trace-file workflow.

Functional execution is the expensive step of a characterization; the
timing model is milliseconds.  This example collects a few workloads'
traces to disk, then prices them under a batch of hypothetical machines
*without re-running any kernel* — the workflow for design-space studies
that outlive one session.

    python examples/trace_workflow.py
"""

import tempfile
import time
from pathlib import Path

from repro.common.config import SimScale
from repro.common.tables import Table
from repro.gpusim import GPU, GPUConfig, TimingModel, load_trace, save_trace
from repro.workloads import get

WORKLOADS = ["bfs", "hotspot", "lud"]
SCALE = SimScale.SMALL

MACHINES = {
    "baseline (28 SM)": GPUConfig.sim_default(),
    "half machine": GPUConfig.sim_default().replace(n_sms=14, n_mem_channels=4),
    "wide memory": GPUConfig.sim_default().replace(bus_width_bytes=32),
    "narrow SIMD": GPUConfig.sim_default().replace(simd_width=8),
    "Fermi-like": GPUConfig.gtx480_l1_bias(),
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # Phase 1: collect (slow, once).
        t0 = time.time()
        for name in WORKLOADS:
            defn = get(name)
            gpu = GPU(app_name=name)
            result = defn.gpu_fn(gpu, SCALE)
            defn.check_gpu(result, SCALE)
            save_trace(gpu.trace, Path(tmp) / f"{name}.npz")
        collect_s = time.time() - t0
        print(f"collected {len(WORKLOADS)} traces in {collect_s:.1f}s\n")

        # Phase 2: analyze (fast, as often as you like).
        t0 = time.time()
        table = Table(
            "IPC under hypothetical machines (priced from saved traces)",
            ["Machine"] + WORKLOADS,
        )
        for label, cfg in MACHINES.items():
            row = [label]
            for name in WORKLOADS:
                trace = load_trace(Path(tmp) / f"{name}.npz")
                row.append(TimingModel(cfg).time(trace).ipc)
            table.add_row(row)
        analyze_s = time.time() - t0
        print(table.render())
        print(f"\npriced {len(MACHINES) * len(WORKLOADS)} (machine, workload) "
              f"pairs in {analyze_s:.1f}s — "
              f"{collect_s / max(analyze_s, 1e-9):.0f}x cheaper than "
              f"re-running the kernels")


if __name__ == "__main__":
    main()
