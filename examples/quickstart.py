"""Quickstart: characterize one Rodinia workload on both substrates.

Runs HotSpot's CUDA-style implementation on the SIMT GPU simulator and
its OpenMP-style implementation on the instrumented CPU machine, then
prints the paper's per-workload metrics.

    python examples/quickstart.py
"""

from repro.common.config import SimScale
from repro.cpusim import Machine, characterize_trace
from repro.gpusim import GPU, GPUConfig, TimingModel
from repro.workloads import get

SCALE = SimScale.SMALL


def main() -> None:
    workload = get("hotspot")
    print(f"Workload: {workload.meta.name} — {workload.meta.description}")
    print(f"Dwarf: {workload.meta.dwarf}; paper size: {workload.meta.paper_size}")

    # ------------------------------------------------------------------
    # GPU side: functional execution produces a timing-independent trace.
    # ------------------------------------------------------------------
    gpu = GPU()
    result = workload.gpu_fn(gpu, SCALE)
    workload.check_gpu(result, SCALE)      # verify against the reference
    trace = gpu.trace
    print(f"\nGPU run: {trace.n_launches} kernel launches, "
          f"{trace.thread_insts:,} thread instructions")
    mix = trace.mem_mix()
    print("Memory mix:", {k: f"{v:.1%}" for k, v in mix.items() if v > 0})
    print("Warp occupancy:", {k: f"{v:.1%}"
                              for k, v in trace.occupancy_buckets().items()})

    # One trace, many machines (this is how Figs. 1, 4, 5 are made):
    for config in (GPUConfig.sim_8sm(), GPUConfig.sim_default(),
                   GPUConfig.gtx480_shared_bias()):
        timing = TimingModel(config).time(trace)
        print(f"  {config.name:>20}: IPC={timing.ipc:7.1f}  "
              f"time={timing.time_s * 1e3:6.2f} ms  "
              f"BW util={timing.bw_utilization:.1%}")

    # ------------------------------------------------------------------
    # CPU side: the Pin-style instrumented run.
    # ------------------------------------------------------------------
    machine = Machine(n_threads=8)
    result = workload.cpu_fn(machine, SCALE)
    workload.check_cpu(result, SCALE)
    metrics = characterize_trace(machine, workload.meta.name)
    print(f"\nCPU run: {metrics.mem_refs:,} memory references")
    print("Instruction mix:", {k: f"{v:.1%}" for k, v in metrics.inst_mix.items()})
    print(f"Miss rate @ 4 MB shared cache: {metrics.miss_rate_4mb:.2%}")
    print(f"Lines shared between threads: {metrics.sharing.frac_lines_shared:.1%}")
    print(f"Data footprint: {metrics.data_footprint_4kb} pages "
          f"(~{metrics.data_footprint_4kb * 4 / 1024:.1f} MB)")


if __name__ == "__main__":
    main()
